#!/usr/bin/env python
"""check_bench: the perf-regression gate over ``BENCH_*.json`` summaries.

Compares freshly produced benchmark summaries against committed
baselines, metric by metric, with per-metric tolerance rules:

* *config echoes* (``family``, ``num_blocks``, ``receivers``, ...) must
  match exactly — drift means the benchmark is no longer measuring the
  same thing, which would silently invalidate every other comparison;
* *quality metrics* (reception overhead, completion rate) gate the
  direction that means a regression, with tight absolute+relative
  tolerances — these are deterministic for seeded runs, so honest runs
  sit well inside the bounds;
* *timing metrics* (seconds, throughput, packets/receivers per second)
  gate only gross collapses (a generous worse-direction factor), since
  CI hardware wobbles;
* *floored metrics* (the batched-ingest speedup) additionally carry an
  absolute minimum that fails regardless of the baseline — same-machine
  ratios don't wobble with hardware, so the win itself is the contract;
* a case or metric present in the baseline but missing from the fresh
  run is a regression (coverage must not silently shrink); new cases
  and metrics are reported but pass;
* *case floors* (``CASE_FLOORS``) pin one metric of one named case to
  an absolute minimum on the fresh payload — hard perf contracts (the
  batch-size-1 ingest ratio, the raptor bk128 transfer rate) that must
  hold regardless of what the baseline drifted to;
* *cross-case claims* (``CROSS_CASE_RULES``) are one-sided inequalities
  between two cases of the same fresh summary — e.g. the systematic
  Raptor claim that its p99 reception overhead undercuts the plain-LT
  median on the identical trace population.  These gate the *claim*
  itself, not drift against a baseline, so they are evaluated on the
  fresh payload alone; a missing case or metric fails the rule.

Baselines come from ``git show <rev>:<file>`` by default (``--baseline-git
HEAD``), so the gate runs after a bench pass has overwritten the
worktree copies; ``--baseline-dir`` points at a directory of saved
baselines instead (used by the unit tests).  Exits non-zero on any
regression, printing one line per offending metric.

Usage::

    make bench-smoke                # regenerates BENCH_*.json
    python tools/check_bench.py     # gate vs the committed (HEAD) copies
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys
from typing import Any, Dict, Iterator, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: metrics that echo benchmark configuration; any drift fails the gate.
CONFIG_KEYS = {
    "case", "family", "code", "schedule", "construction",
    "block_packets", "num_blocks", "file_size", "packet_size",
    "loss", "k", "n", "receivers", "blocks", "destinations",
}

#: ordered (pattern, direction, rule) — first match wins.  ``factor``
#: rules allow that multiplicative worsening before failing (timing
#: metrics on shared CI hardware); ``abs_tol``/``rel_tol`` rules allow
#: ``max(abs_tol, rel_tol * |baseline|)`` of worsening.
METRIC_RULES: List[Tuple[str, str, Dict[str, float]]] = [
    (r"(seconds|elapsed|_ms$|_s$)", "lower", {"factor": 4.0}),
    (r"(throughput|mbps|per_sec|per_second|goodput|pkt_s|pps)",
     "higher", {"factor": 4.0}),
    # The batched-intake headline: same-machine ratio with an absolute
    # floor — vectorized bulk ingest must hold >= 4x the reference
    # scalar path on LT decode, regardless of what the baseline says.
    (r"batched_ingest_speedup", "higher", {"factor": 2.0, "floor": 4.0}),
    # vectorized-over-reference ratios: same-machine measurements, so a
    # tighter factor locks the vectorization win in against backsliding.
    (r"speedup", "higher", {"factor": 2.0}),
    (r"overhead", "lower", {"abs_tol": 0.05, "rel_tol": 0.5}),
    (r"(completion|efficiency|eta|rate)", "higher",
     {"abs_tol": 0.02, "rel_tol": 0.05}),
]

#: fallback for unclassified numeric metrics: generous two-sided drift.
DEFAULT_RULE = ("both", {"abs_tol": 1e-9, "rel_tol": 0.5})

#: one-sided claims between two cases of one summary file, evaluated on
#: the fresh payload alone:
#: ``(file, (case_a, metric_a), op, ratio, (case_b, metric_b), claim)``
#: asserts ``a <op> ratio * b``.  Overhead claims are deterministic for
#: seeded runs, so the ratio is exact; throughput claims get the same
#: generous factor the timing rules use (shared CI hardware wobbles,
#: but a same-machine ratio collapse is a real regression).
#: absolute per-case floors, evaluated on the fresh payload alone:
#: ``(file, case, metric, floor, claim)`` fails whenever the fresh
#: value dips below ``floor``.  Unlike the pattern-matched metric rules
#: these name one case, so the same metric can carry a hard contract in
#: one row and stay advisory elsewhere.
CASE_FLOORS: List[Tuple[str, str, str, float, str]] = [
    # Sub-threshold batches must never be slower than scalar intake:
    # the batch-size-1 routing fix is a same-machine ratio, so >= 1.0
    # is the contract, not a tolerance.
    ("BENCH_transfer.json", "ingest-lt-k128-b1", "ingest_speedup", 1.0,
     "batch-size-1 ingest fell behind the reference scalar path"),
    # The raptor encode fast path (cached solve plans): the
    # block-segmented raptor transfer must hold >= 3x its pre-plan
    # committed baseline of 7.79 MB/s end to end.
    ("BENCH_transfer.json", "raptor-bk128", "throughput_MBps", 20.0,
     "raptor bk128 transfer lost the cached-solve-plan speedup"),
]

CROSS_CASE_RULES: List[Tuple[str, Tuple[str, str], str, float,
                             Tuple[str, str], str]] = [
    # The constant-overhead headline: on the identical mobile-trace
    # population, the systematic Raptor swarm's p99 reception overhead
    # must undercut the plain-LT swarm's *median* — the p99-vs-p50
    # collapse is the paper-level claim the subsystem exists to make.
    ("BENCH_swarm.json", ("raptor-traces", "overhead_p99"), "<=", 1.0,
     ("mobile-traces", "overhead_p50"),
     "systematic Raptor p99 overhead must undercut the LT median"),
    # Raptor decode must stay LT-class on both codec backends: the
    # two-stage decoder (precode constraints + inactivation) may not
    # cost more than the timing-gate factor over plain LT ingest.
    ("BENCH_transfer.json",
     ("raw-raptor-k128", "decode_MBps_vectorized"), ">=", 0.25,
     ("raw-lt-k128", "decode_MBps_vectorized"),
     "raptor decode fell out of LT-class (vectorized backend)"),
    ("BENCH_transfer.json",
     ("raw-raptor-k128", "decode_MBps_reference"), ">=", 0.25,
     ("raw-lt-k128", "decode_MBps_reference"),
     "raptor decode fell out of LT-class (reference backend)"),
    # The cached-plan encode path: raw raptor encode (pre-solve included)
    # must stay within 2x of plain LT encode on the fast backend — the
    # pre-plan implementation sat at ~4x behind.
    ("BENCH_transfer.json",
     ("raw-raptor-k128", "encode_MBps_vectorized"), ">=", 0.5,
     ("raw-lt-k128", "encode_MBps_vectorized"),
     "raptor encode fell out of the LT/2 class (cached solve plans)"),
    # The closed-loop headline: on the identical Gilbert satellite
    # population (LT-coded, packet-for-packet fair slot budgets), the
    # feedback-driven adaptive sender's p99 reception overhead must
    # undercut the open-loop carousel's p99 by at least 15%, on both
    # codec backends.  Seeded sweeps are deterministic, so the ratio
    # is exact.
    ("BENCH_adaptive.json",
     ("adaptive-gilbert-vectorized", "overhead_p99"), "<=", 0.85,
     ("openloop-gilbert-vectorized", "overhead_p99"),
     "adaptive closed loop lost its >=15% p99 win (vectorized backend)"),
    ("BENCH_adaptive.json",
     ("adaptive-gilbert-reference", "overhead_p99"), "<=", 0.85,
     ("openloop-gilbert-reference", "overhead_p99"),
     "adaptive closed loop lost its >=15% p99 win (reference backend)"),
]


class Regression:
    """One failed comparison, with enough context to act on."""

    def __init__(self, file: str, case: str, metric: str, detail: str):
        self.file = file
        self.case = case
        self.metric = metric
        self.detail = detail

    def __str__(self) -> str:
        return (f"REGRESSION {self.file} [{self.case}] {self.metric}: "
                f"{self.detail}")


def classify(metric: str) -> Tuple[str, Dict[str, float]]:
    """The comparison rule for one metric name."""
    if metric in CONFIG_KEYS:
        return ("exact", {})
    lowered = metric.lower()
    for pattern, direction, rule in METRIC_RULES:
        if re.search(pattern, lowered):
            return (direction, rule)
    return DEFAULT_RULE


def _allowance(baseline: float, rule: Dict[str, float]) -> float:
    return max(rule.get("abs_tol", 0.0),
               rule.get("rel_tol", 0.0) * abs(baseline))


def compare_metric(metric: str, baseline: Any, current: Any
                   ) -> Optional[str]:
    """None when ``current`` passes against ``baseline``, else a reason."""
    direction, rule = classify(metric)
    if direction == "exact" or not isinstance(baseline, (int, float)) \
            or isinstance(baseline, bool):
        if baseline != current:
            return (f"configuration drift: baseline {baseline!r} != "
                    f"current {current!r}")
        return None
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        return f"baseline is numeric ({baseline!r}), current is {current!r}"
    if "floor" in rule and current < rule["floor"]:
        return (f"{current} is below the absolute floor of "
                f"{rule['floor']:g} (hard perf gate)")
    if "factor" in rule:
        factor = rule["factor"]
        slack = rule.get("abs_tol", 0.0)
        if direction == "lower" and current > baseline * factor + slack:
            return (f"{current} exceeds {factor:g}x the baseline "
                    f"{baseline} (timing gate)")
        if direction == "higher" and current < baseline / factor - slack:
            return (f"{current} fell below 1/{factor:g} of the baseline "
                    f"{baseline} (timing gate)")
        return None
    allowed = _allowance(float(baseline), rule)
    delta = float(current) - float(baseline)
    if direction == "lower" and delta > allowed:
        return (f"worsened by {delta:+.4g} (baseline {baseline}, "
                f"current {current}, allowed +{allowed:.4g})")
    if direction == "higher" and -delta > allowed:
        return (f"worsened by {delta:+.4g} (baseline {baseline}, "
                f"current {current}, allowed -{allowed:.4g})")
    if direction == "both" and abs(delta) > allowed:
        return (f"drifted by {delta:+.4g} (baseline {baseline}, "
                f"current {current}, allowed ±{allowed:.4g})")
    return None


def _rows_by_case(payload: dict, origin: str) -> Dict[str, dict]:
    rows = payload.get("results")
    if not isinstance(rows, list):
        raise SystemExit(f"error: {origin} has no 'results' list")
    return {row["case"]: row for row in rows}


def compare_payloads(file_name: str, baseline: dict, current: dict
                     ) -> Tuple[List[Regression], List[str]]:
    """All regressions plus informational notes for one summary file."""
    regressions: List[Regression] = []
    notes: List[str] = []
    base_rows = _rows_by_case(baseline, f"baseline {file_name}")
    cur_rows = _rows_by_case(current, f"current {file_name}")
    for case, base_row in sorted(base_rows.items()):
        cur_row = cur_rows.get(case)
        if cur_row is None:
            regressions.append(Regression(
                file_name, case, "-", "case missing from the fresh run"))
            continue
        for metric, base_value in sorted(base_row.items()):
            if metric == "case":
                continue
            if metric not in cur_row:
                regressions.append(Regression(
                    file_name, case, metric,
                    "metric missing from the fresh run"))
                continue
            reason = compare_metric(metric, base_value, cur_row[metric])
            if reason is not None:
                regressions.append(
                    Regression(file_name, case, metric, reason))
        for metric in sorted(set(cur_row) - set(base_row)):
            notes.append(f"note: {file_name} [{case}] new metric {metric}")
    for case in sorted(set(cur_rows) - set(base_rows)):
        notes.append(f"note: {file_name} new case {case}")
    return regressions, notes


def check_case_floors(file_name: str, current: dict) -> List[Regression]:
    """Evaluate every :data:`CASE_FLOORS` entry for one summary."""
    regressions: List[Regression] = []
    rows = _rows_by_case(current, f"current {file_name}")
    for rule_file, case, metric, floor, claim in CASE_FLOORS:
        if rule_file != file_name:
            continue
        row = rows.get(case)
        value = None if row is None else row.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            regressions.append(Regression(
                file_name, case, metric,
                f"case floor needs this metric, got {value!r} ({claim})"))
            continue
        if value < floor:
            regressions.append(Regression(
                file_name, case, metric,
                f"{value} is below the absolute floor of {floor:g}: "
                f"{claim}"))
    return regressions


def check_cross_cases(file_name: str, current: dict
                      ) -> List[Regression]:
    """Evaluate every :data:`CROSS_CASE_RULES` entry for one summary."""
    regressions: List[Regression] = []
    rows = _rows_by_case(current, f"current {file_name}")
    for rule_file, (case_a, metric_a), op, ratio, (case_b, metric_b), \
            claim in CROSS_CASE_RULES:
        if rule_file != file_name:
            continue
        values = []
        for case, metric in ((case_a, metric_a), (case_b, metric_b)):
            row = rows.get(case)
            value = None if row is None else row.get(metric)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                regressions.append(Regression(
                    file_name, case, metric,
                    f"cross-case rule needs this metric, got {value!r} "
                    f"({claim})"))
                value = None
            values.append(value)
        a, b = values
        if a is None or b is None:
            continue
        bound = ratio * float(b)
        failed = a > bound if op == "<=" else a < bound
        if failed:
            regressions.append(Regression(
                file_name, case_a, metric_a,
                f"{a} violates {metric_a} {op} {ratio:g} * "
                f"{case_b}.{metric_b} (= {bound:.4g}): {claim}"))
    return regressions


def _git_baseline(rev: str, file_name: str) -> Optional[dict]:
    proc = subprocess.run(
        ["git", "show", f"{rev}:{file_name}"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def iter_comparisons(current_dir: pathlib.Path,
                     baseline_dir: Optional[pathlib.Path],
                     baseline_git: str,
                     pattern: str) -> Iterator[Tuple[str, dict, dict]]:
    """Yield ``(file_name, baseline_payload, current_payload)`` pairs."""
    names = sorted(p.name for p in current_dir.glob(pattern)
                   if p.name != "BENCH_runinfo.json")
    if not names:
        raise SystemExit(
            f"error: no {pattern} files in {current_dir} — run the "
            "benchmarks first (make bench-smoke)")
    for name in names:
        if baseline_dir is not None:
            base_path = baseline_dir / name
            if not base_path.exists():
                print(f"note: no baseline for {name}; skipping")
                continue
            baseline = json.loads(base_path.read_text())
        else:
            baseline = _git_baseline(baseline_git, name)
            if baseline is None:
                print(f"note: {name} not committed at {baseline_git}; "
                      "skipping")
                continue
        current = json.loads((current_dir / name).read_text())
        yield name, baseline, current


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh BENCH_*.json summaries regress "
                    "against their committed baselines")
    parser.add_argument("--current-dir", type=pathlib.Path,
                        default=REPO_ROOT,
                        help="directory holding the fresh summaries "
                             "(default: the repo root)")
    parser.add_argument("--baseline-dir", type=pathlib.Path, default=None,
                        help="directory of baseline summaries (overrides "
                             "--baseline-git)")
    parser.add_argument("--baseline-git", default="HEAD",
                        help="git revision to read baselines from "
                             "(default: HEAD)")
    parser.add_argument("--pattern", default="BENCH_*.json",
                        help="summary file glob (default: BENCH_*.json)")
    args = parser.parse_args(argv)

    all_regressions: List[Regression] = []
    compared = 0
    for name, baseline, current in iter_comparisons(
            args.current_dir, args.baseline_dir, args.baseline_git,
            args.pattern):
        regressions, notes = compare_payloads(name, baseline, current)
        regressions.extend(check_case_floors(name, current))
        regressions.extend(check_cross_cases(name, current))
        for note in notes:
            print(note)
        cases = len(_rows_by_case(baseline, name))
        compared += 1
        if regressions:
            for regression in regressions:
                print(regression)
        else:
            print(f"ok   {name}: {cases} case(s) within tolerance")
        all_regressions.extend(regressions)
    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s) across "
              f"{compared} summary file(s)")
        return 1
    if compared == 0:
        print("error: no summaries had a baseline to compare against — "
              "the gate checked nothing")
        return 1
    print(f"all {compared} summary file(s) pass the perf gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
