"""Matrix algebra over GF(2^m): inversion, solving, MDS constructions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, SingularMatrixError
from repro.gf import (
    GF256,
    GF65536,
    cauchy_matrix,
    gf_eye,
    gf_invert,
    gf_matmul,
    gf_matvec_packets,
    gf_solve,
    systematize,
    vandermonde_matrix,
)
from repro.gf.matrix import gf2_solve, is_identity


def random_invertible(n, field, rng):
    """Rejection-sample an invertible matrix."""
    while True:
        mat = rng.integers(0, field.order, size=(n, n)).astype(field.dtype)
        try:
            gf_invert(mat, field)
            return mat
        except SingularMatrixError:
            continue


@pytest.mark.parametrize("field", [GF256, GF65536], ids=["gf256", "gf65536"])
def test_invert_roundtrip(field):
    rng = np.random.default_rng(0)
    mat = random_invertible(8, field, rng)
    inv = gf_invert(mat, field)
    assert is_identity(gf_matmul(mat, inv, field))
    assert is_identity(gf_matmul(inv, mat, field))


def test_invert_singular_raises():
    mat = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        gf_invert(mat, GF256)


def test_invert_requires_square():
    with pytest.raises(ParameterError):
        gf_invert(np.zeros((2, 3), dtype=np.uint8), GF256)


def test_solve_matches_invert_multiply():
    rng = np.random.default_rng(1)
    field = GF256
    mat = random_invertible(6, field, rng)
    rhs = rng.integers(0, 256, size=(6, 10)).astype(np.uint8)
    x = gf_solve(mat, rhs, field)
    assert np.array_equal(gf_matvec_packets(mat, x, field), rhs)


@given(n=st.integers(min_value=1, max_value=12))
@settings(max_examples=12, deadline=None)
def test_vandermonde_any_square_submatrix_invertible(n):
    field = GF256
    mat = vandermonde_matrix(2 * n, n, field)
    rng = np.random.default_rng(n)
    rows = rng.choice(2 * n, size=n, replace=False)
    gf_invert(mat[rows], field)  # must not raise


@given(n=st.integers(min_value=1, max_value=12))
@settings(max_examples=12, deadline=None)
def test_cauchy_any_square_submatrix_invertible(n):
    field = GF256
    mat = cauchy_matrix(2 * n, n, field)
    rng = np.random.default_rng(100 + n)
    rows = rng.choice(2 * n, size=n, replace=False)
    gf_invert(mat[rows], field)  # must not raise


def test_cauchy_size_limit():
    with pytest.raises(ParameterError):
        cauchy_matrix(200, 100, GF256)


def test_vandermonde_size_limit():
    vandermonde_matrix(256, 10, GF256)  # full field is allowed
    with pytest.raises(ParameterError):
        vandermonde_matrix(257, 10, GF256)


def test_systematize_top_is_identity():
    field = GF256
    gen = vandermonde_matrix(12, 5, field)
    sys = systematize(gen, 5, field)
    assert is_identity(sys[:5])
    # MDS preserved: any 5 rows invertible
    rng = np.random.default_rng(9)
    rows = rng.choice(12, size=5, replace=False)
    gf_invert(sys[rows], field)


def test_gf_matmul_shape_mismatch():
    with pytest.raises(ParameterError):
        gf_matmul(np.zeros((2, 3), dtype=np.uint8),
                  np.zeros((2, 3), dtype=np.uint8), GF256)


def test_gf_matvec_identity_passthrough():
    field = GF256
    rng = np.random.default_rng(4)
    packets = rng.integers(0, 256, size=(5, 7)).astype(np.uint8)
    out = gf_matvec_packets(gf_eye(5, field), packets, field)
    assert np.array_equal(out, packets)


def test_gf2_solve_roundtrip():
    rng = np.random.default_rng(5)
    n = 20
    while True:
        mat = rng.random((n, n)) < 0.5
        try:
            x = rng.integers(0, 256, size=(n, 4)).astype(np.uint8)
            rhs = np.zeros_like(x)
            for i in range(n):
                for j in range(n):
                    if mat[i, j]:
                        rhs[i] ^= x[j]
            solved = gf2_solve(mat, rhs)
            assert np.array_equal(solved, x)
            break
        except SingularMatrixError:
            continue


def test_gf2_solve_underdetermined():
    with pytest.raises(SingularMatrixError):
        gf2_solve(np.ones((2, 3), dtype=bool), np.zeros((2, 1), dtype=np.uint8))
