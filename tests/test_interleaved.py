"""Interleaved block codes: indexing, carousel order, quorum decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.interleaved import InterleavedCode
from repro.errors import DecodeFailure, ParameterError


def make_source(code, payload=8, seed=0):
    rng = np.random.default_rng(seed)
    dtype = code.block_codes[0].field.dtype
    hi = int(np.iinfo(dtype).max) + 1
    return rng.integers(0, hi, size=(code.total_k, payload)).astype(dtype)


def test_block_partition_even():
    code = InterleavedCode(100, 20)
    assert code.num_blocks == 5
    assert code.block_sizes == [20] * 5
    assert code.n == 200


def test_block_partition_uneven():
    code = InterleavedCode(103, 20)
    assert code.num_blocks == 6
    assert sum(code.block_sizes) == 103
    assert max(code.block_sizes) - min(code.block_sizes) <= 1


def test_block_of_roundtrips_global_index():
    code = InterleavedCode(53, 10)
    for idx in range(code.n):
        b, within = code.block_of(idx)
        assert code.global_index(b, within) == idx


def test_carousel_order_is_permutation_and_interleaved():
    code = InterleavedCode(60, 20)
    order = code.carousel_order()
    assert sorted(order.tolist()) == list(range(code.n))
    # First B slots touch each block exactly once.
    first_blocks = [code.block_of(int(i))[0] for i in order[:code.num_blocks]]
    assert sorted(first_blocks) == list(range(code.num_blocks))


def test_encode_decode_roundtrip():
    code = InterleavedCode(60, 20)
    src = make_source(code, seed=1)
    enc = code.encode(src)
    rng = np.random.default_rng(2)
    received = {}
    for b in range(code.num_blocks):
        n_b = code.block_ns[b]
        pick = rng.choice(n_b, size=code.block_sizes[b], replace=False)
        for within in pick:
            gi = code.global_index(b, int(within))
            received[gi] = enc[gi]
    assert np.array_equal(code.decode(received), src)


def test_decode_fails_when_one_block_short():
    code = InterleavedCode(40, 20)
    src = make_source(code, seed=3)
    enc = code.encode(src)
    received = {i: enc[i] for i in range(code.block_ns[0])}  # block 0 only
    with pytest.raises(DecodeFailure):
        code.decode(received)


def test_is_decodable_needs_every_block():
    code = InterleavedCode(40, 20)
    block0 = [code.global_index(0, j) for j in range(20)]
    block1 = [code.global_index(1, j) for j in range(20)]
    assert not code.is_decodable(block0)
    assert code.is_decodable(block0 + block1)
    # duplicates don't help
    assert not code.is_decodable(block0 + block0)


def test_packets_to_decode_counts_duplicates():
    code = InterleavedCode(4, 2)
    b0 = [code.global_index(0, j) for j in range(2)]
    b1 = [code.global_index(1, j) for j in range(2)]
    order = [b0[0], b0[0], b0[1], b1[0], b1[1]]
    assert code.packets_to_decode(order) == 5


@given(total=st.integers(min_value=4, max_value=80),
       block=st.integers(min_value=2, max_value=30))
@settings(max_examples=25, deadline=None)
def test_structural_invariants(total, block):
    code = InterleavedCode(total, block)
    assert sum(code.block_sizes) == total
    assert code.n == sum(code.block_ns)
    order = code.carousel_order()
    assert sorted(order.tolist()) == list(range(code.n))


def test_block_k_larger_than_total_is_clamped():
    code = InterleavedCode(10, 100)
    assert code.num_blocks == 1
    assert code.block_sizes == [10]


def test_bad_parameters():
    with pytest.raises(ParameterError):
        InterleavedCode(0, 5)
    with pytest.raises(ParameterError):
        InterleavedCode(10, 0)
    code = InterleavedCode(10, 5)
    with pytest.raises(ParameterError):
        code.block_of(code.n)
    with pytest.raises(ParameterError):
        code.global_index(5, 0)
