"""Simulation harnesses: overhead sampling, reception sims, scaling, speedup."""

import numpy as np
import pytest

from repro.codes.interleaved import InterleavedCode
from repro.codes.reed_solomon import cauchy_code
from repro.codes.tornado.presets import tornado_a
from repro.errors import DecodeFailure, ParameterError
from repro.net.loss import BernoulliLoss, TraceLoss
from repro.net.traces import synthesize_mbone_traces
from repro.sim.overhead import (
    ThresholdPool,
    overhead_statistics,
    percent_unfinished_curve,
    sample_decode_thresholds,
)
from repro.sim.reception import fountain_packets_until, interleaved_packets_until
from repro.sim.receivers import (
    build_fountain_pool,
    build_interleaved_pool,
    scaling_experiment,
)
from repro.sim.speedup import max_blocks_within_overhead, speedup_table_entry
from repro.sim.timemodel import TimingModel
from repro.sim.tracesim import trace_fountain_efficiency


class TestOverheadSampling:
    def test_rs_thresholds_exactly_k(self):
        code = cauchy_code(30)
        thresholds = sample_decode_thresholds(code, 10, rng=0)
        assert (thresholds == 30).all()

    def test_tornado_thresholds_above_k(self):
        code = tornado_a(300, seed=1)
        thresholds = sample_decode_thresholds(code, 8, rng=1)
        assert (thresholds >= 300).all()
        assert (thresholds <= code.n).all()

    def test_statistics(self):
        stats = overhead_statistics([110, 120], k=100)
        assert stats.mean == pytest.approx(0.15)
        assert stats.minimum == pytest.approx(0.10)
        assert stats.maximum == pytest.approx(0.20)

    def test_unfinished_curve_monotone(self):
        grid, pct = percent_unfinished_curve([110, 115, 120, 150], k=100)
        assert pct[0] == 100.0
        assert (np.diff(pct) <= 0).all()
        assert pct[-1] == 0.0

    def test_pool_sampling(self):
        pool = ThresholdPool(thresholds=np.array([100, 200]), k=100)
        draws = pool.sample(1000, rng=2)
        assert set(np.unique(draws)) <= {100, 200}

    def test_empty_trials_rejected(self):
        with pytest.raises(ParameterError):
            sample_decode_thresholds(cauchy_code(4), 0)


class TestFountainReception:
    def test_no_loss_exact(self):
        # threshold distinct packets with no loss -> exactly threshold.
        total = fountain_packets_until(50, 100, BernoulliLoss(0.0), rng=0)
        assert total == 50

    def test_loss_increases_total(self):
        t_lossy = fountain_packets_until(90, 100, BernoulliLoss(0.5), rng=1)
        assert t_lossy >= 90

    def test_wraparound_duplicates(self):
        """Needing more than one cycle's survivors forces duplicates."""
        rng = np.random.default_rng(2)
        totals = [fountain_packets_until(95, 100, BernoulliLoss(0.5),
                                         rng=rng) for _ in range(20)]
        assert max(totals) > 100  # some runs must wrap the carousel

    def test_threshold_validation(self):
        with pytest.raises(ParameterError):
            fountain_packets_until(0, 10, BernoulliLoss(0.1))
        with pytest.raises(ParameterError):
            fountain_packets_until(11, 10, BernoulliLoss(0.1))

    def test_impossible_raises(self):
        # complete outage: never completes within max_cycles
        trace = TraceLoss(np.ones(10, dtype=bool))
        with pytest.raises(DecodeFailure):
            fountain_packets_until(5, 10, trace, rng=0, max_cycles=3)


class TestInterleavedReception:
    def test_no_loss_counts_until_all_blocks_full(self):
        code = InterleavedCode(40, 20)
        total = interleaved_packets_until(code, BernoulliLoss(0.0), rng=0)
        # Interleaved order fills both blocks' source quota after exactly
        # 2 * 20 slots (one packet per block in turn).
        assert total == 40

    def test_matches_packets_to_decode_under_no_loss(self):
        code = InterleavedCode(60, 20)
        total = interleaved_packets_until(code, BernoulliLoss(0.0), rng=0)
        assert total == code.packets_to_decode(code.carousel_order())

    def test_loss_worsens_with_more_blocks(self):
        rng = np.random.default_rng(3)
        few = InterleavedCode(200, 100)
        many = InterleavedCode(200, 10)
        t_few = np.mean([interleaved_packets_until(few, BernoulliLoss(0.5),
                                                   rng) for _ in range(15)])
        t_many = np.mean([interleaved_packets_until(many, BernoulliLoss(0.5),
                                                    rng) for _ in range(15)])
        assert t_many > t_few  # coupon-collector penalty


class TestPoolsAndScaling:
    def test_fountain_pool(self):
        code = tornado_a(200, seed=4)
        tpool = ThresholdPool.for_code(code, trials=10, rng=5)
        pool = build_fountain_pool(tpool, code.n, BernoulliLoss(0.1),
                                   pool_size=20, rng=6)
        assert pool.totals.size == 20
        assert 0 < pool.average_efficiency() <= 1

    def test_scaling_monotone_worst_case(self):
        code = InterleavedCode(200, 20)
        pool = build_interleaved_pool(code, BernoulliLoss(0.5),
                                      pool_size=40, rng=7)
        results = scaling_experiment(pool, [1, 10, 100], experiments=30,
                                     rng=8)
        worsts = [r.worst for r in results]
        assert worsts[0] >= worsts[1] >= worsts[2]

    def test_scaling_validation(self):
        code = InterleavedCode(100, 20)
        pool = build_interleaved_pool(code, BernoulliLoss(0.1),
                                      pool_size=5, rng=9)
        with pytest.raises(ParameterError):
            scaling_experiment(pool, [0], experiments=1)


class TestTraceSim:
    def test_fountain_on_traces(self):
        traces = synthesize_mbone_traces(10, 5000, rng=10)
        code = tornado_a(150, seed=11)
        tpool = ThresholdPool.for_code(code, trials=8, rng=12)
        result = trace_fountain_efficiency(tpool, code.n, traces, rng=13)
        assert result.completed_receivers > 0
        assert 0 < result.average_efficiency <= 1


class TestSpeedup:
    def test_timing_model_quadratic(self):
        model = TimingModel.fit(block_sizes=(8, 16), payload=64, repeats=1)
        assert model.coeff > 0
        assert model.predict(32) == pytest.approx(model.coeff * 32 * 32)
        assert model.interleaved_decode_time(100, 5) == pytest.approx(
            5 * model.predict(20))

    def test_more_blocks_never_passes_if_fewer_fails(self):
        """max_blocks search returns a feasible block count."""
        bound = 0.5  # generous bound so the search definitely moves
        blocks = max_blocks_within_overhead(100, 0.1, bound, trials=15,
                                            rng=14)
        assert blocks >= 1

    def test_tighter_bound_fewer_blocks(self):
        loose = max_blocks_within_overhead(200, 0.5, 0.5, trials=15, rng=15)
        tight = max_blocks_within_overhead(200, 0.5, 0.10, trials=15, rng=15)
        assert tight <= loose

    def test_entry_composition(self):
        model = TimingModel(coeff=1e-6)
        entry = speedup_table_entry(100, 0.1, 0.5, model,
                                    tornado_decode_seconds=1e-3,
                                    trials=10, rng=16)
        assert entry.num_blocks >= 1
        assert entry.speedup == pytest.approx(
            entry.interleaved_decode_seconds / 1e-3)
