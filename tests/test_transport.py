"""The transport layer: framing, pacing, memory/file/UDP delivery.

The UDP tests bind real loopback sockets and skip gracefully where the
environment forbids them (sandboxed CI runners without network
namespaces).
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro import api
from repro.errors import ParameterError, ProtocolError, ReproError
from repro.net.transport import (
    FRAME_DATA,
    FRAME_MANIFEST,
    FileTransport,
    MemoryTransport,
    TokenBucket,
    TRANSPORTS,
    UdpSubscription,
    UdpTransport,
    is_multicast,
    iter_frames,
    pack_frame,
    parse_address,
    transport_names,
)


def _random_bytes(n, seed):
    return bytes(np.random.default_rng(seed).integers(0, 256, n,
                                                      dtype=np.uint8))


def _udp_available():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


needs_udp = pytest.mark.skipif(
    not _udp_available(), reason="UDP loopback sockets unavailable")


class TestFraming:
    def test_round_trip_multiple_frames(self):
        datagram = (pack_frame(FRAME_MANIFEST, b'{"k": 1}')
                    + pack_frame(FRAME_DATA, b"abc")
                    + pack_frame(FRAME_DATA, b""))
        frames = list(iter_frames(datagram))
        assert frames == [(FRAME_MANIFEST, b'{"k": 1}'),
                          (FRAME_DATA, b"abc"), (FRAME_DATA, b"")]

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            list(iter_frames(b"\x01\x00"))

    def test_short_body_rejected(self):
        with pytest.raises(ProtocolError, match="body bytes"):
            list(iter_frames(pack_frame(FRAME_DATA, b"abcd")[:-2]))

    def test_oversize_body_rejected(self):
        with pytest.raises(ProtocolError, match="length"):
            pack_frame(FRAME_DATA, b"x" * 70_000)

    def test_registry_names(self):
        assert transport_names() == ["file", "memory", "udp"]
        assert TRANSPORTS["udp"] is UdpTransport


class TestTokenBucket:
    def test_burst_then_paced(self):
        clock = [0.0]
        bucket = TokenBucket(100.0, capacity=5.0, clock=lambda: clock[0])
        delays = [bucket.reserve() for _ in range(5)]
        assert delays == [0.0] * 5  # the initial burst rides the bucket
        assert bucket.reserve() == pytest.approx(0.01)  # 1 token of debt
        assert bucket.reserve() == pytest.approx(0.02)

    def test_refill_is_capped(self):
        clock = [0.0]
        bucket = TokenBucket(100.0, capacity=4.0, clock=lambda: clock[0])
        for _ in range(4):
            bucket.reserve()
        clock[0] += 100.0  # a long idle period
        assert bucket.tokens == pytest.approx(4.0)  # not 10_000

    def test_long_run_rate(self):
        clock = [0.0]
        bucket = TokenBucket(200.0, capacity=1.0, clock=lambda: clock[0])
        total = 0.0
        for _ in range(100):
            delay = bucket.reserve()
            total += delay
            clock[0] += delay
        # 100 packets at 200 pps take ~0.5 s of enforced pacing.
        assert total == pytest.approx(0.5, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ParameterError):
            TokenBucket(0.0)


class TestAddressing:
    def test_parse(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address(("h", 1)) == ("h", 1)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ParameterError):
            parse_address("no-port")
        with pytest.raises(ParameterError):
            parse_address("h:not-a-number")

    def test_is_multicast(self):
        assert is_multicast("239.1.2.3")
        assert not is_multicast("127.0.0.1")
        assert not is_multicast("example.org")


class TestMemoryTransport:
    def test_two_subscribers_decode_byte_exact(self):
        data = _random_bytes(60_000, seed=1)
        session = api.SenderSession(data, code="tornado-b",
                                    packet_size=512, block_size=16_384,
                                    seed=7)
        transport = MemoryTransport(loss=0.3, seed=11)
        subs = [transport.subscribe(), transport.subscribe()]
        report = session.serve(transport)
        assert report.transport == "memory"
        assert report.destinations == 2
        assert report.emitted <= report.delivered + report.dropped
        for sub in subs:
            receiver = sub.receive()
            assert receiver.is_complete
            assert receiver.data() == data

    def test_deterministic_under_fixed_seed(self):
        data = _random_bytes(20_000, seed=2)

        def run():
            session = api.SenderSession(data, code="lt", packet_size=256,
                                        block_size=8_192, seed=3)
            transport = MemoryTransport(loss=0.25, seed=42)
            sub = transport.subscribe()
            report = session.serve(transport)
            return report, list(sub.records())

        report_a, records_a = run()
        report_b, records_b = run()
        assert report_a.emitted == report_b.emitted
        assert report_a.delivered == report_b.delivered
        assert records_a == records_b

    def test_no_subscribers_rejected(self):
        session = api.SenderSession(b"x" * 4096, packet_size=256,
                                    block_size=4_096)
        with pytest.raises(ProtocolError, match="subscribe"):
            MemoryTransport().serve(session)

    def test_explicit_count_emits_exactly(self):
        session = api.SenderSession(_random_bytes(8_192, seed=4),
                                    packet_size=256, block_size=4_096)
        transport = MemoryTransport()
        sub = transport.subscribe()
        report = session.serve(transport, count=10)
        assert report.emitted == 10
        assert sub.available == 10  # lossless: every record lands

    def test_too_lossy_raises(self):
        session = api.SenderSession(_random_bytes(4_096, seed=5),
                                    packet_size=256, block_size=4_096)
        transport = MemoryTransport(loss=0.999, seed=1)
        transport.subscribe()
        with pytest.raises(ReproError, match="too lossy"):
            session.serve(transport)

    def test_manifest_requires_serve(self):
        sub = MemoryTransport().subscribe()
        with pytest.raises(ProtocolError, match="serve"):
            sub.manifest()


class TestFileTransport:
    def test_serve_subscribe_round_trip(self, tmp_path):
        data = _random_bytes(50_000, seed=6)
        session = api.SenderSession(data, code="lt", block_size=16_384,
                                    seed=9, file_name="blob.bin")
        transport = FileTransport(tmp_path / "out", loss=0.2, seed=13)
        report = session.serve(transport, extra=4)
        assert (tmp_path / "out" / "stream.pkt").exists()
        sub = transport.subscribe()
        assert sub.manifest()["file_name"] == "blob.bin"
        assert sub.available == report.delivered
        receiver = api.ReceiverSession.from_subscription(sub)
        assert sub.feed(receiver)
        assert receiver.data() == data

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ProtocolError, match="manifest"):
            FileTransport(tmp_path).subscribe().manifest()

    def test_send_file_rides_file_transport(self, tmp_path):
        """The api facade and the raw transport agree byte for byte."""
        data = _random_bytes(30_000, seed=7)
        src = tmp_path / "f.bin"
        src.write_bytes(data)
        api.send_file(src, tmp_path / "a", code="tornado-b",
                      block_size=8_192, loss=0.1, seed=5)
        session = api.SenderSession.for_file(src, code="tornado-b",
                                             block_size=8_192, seed=5)
        session.serve(FileTransport(tmp_path / "b", loss=0.1, seed=6))
        stream_a = (tmp_path / "a" / "stream.pkt").read_bytes()
        stream_b = (tmp_path / "b" / "stream.pkt").read_bytes()
        # Serving again continues the fountain stream; a reset replays
        # it from the top, byte for byte (the channel seed matching
        # send_file's seed+1 derivation).
        session.source.reset()
        session.serve(FileTransport(tmp_path / "c", loss=0.1, seed=6))
        assert stream_b == (tmp_path / "c" / "stream.pkt").read_bytes()
        manifest_a = json.loads(
            (tmp_path / "a" / "manifest.json").read_text())
        manifest_b = json.loads(
            (tmp_path / "b" / "manifest.json").read_text())
        assert manifest_a["code"] == manifest_b["code"] == "tornado-b"
        assert len(stream_a) % (16 + 1024) == 0


class TestSessionFacade:
    def test_new_stream_shares_encodings(self):
        data = _random_bytes(30_000, seed=8)
        session = api.SenderSession(data, code="tornado-b",
                                    packet_size=512, block_size=8_192)
        stream = session.new_stream(seed=77)
        assert stream is not session.source
        assert stream._payloads is session.source._payloads
        receiver = api.ReceiverSession(session.manifest())
        for packet in stream.packets():
            if receiver.receive(packet):
                break
        assert receiver.data() == data


# -- real sockets --------------------------------------------------------------


def _serve_to_receivers(data, spec, *, n_receivers=1, loss=0.0, pace=None,
                        block_size=256 * 1024, seed=5, timeout=20.0,
                        in_band_manifest=False):
    """One sender session fanned out to ``n_receivers`` UDP receivers.

    Returns ``(receiver_sessions, serve_report, sender_session)``; any
    receiver-thread exception is re-raised in the caller.
    """
    session = api.SenderSession(data, code=spec, seed=seed,
                                block_size=block_size, file_name="blob")
    subs = [UdpSubscription("127.0.0.1:0", timeout=timeout)
            for _ in range(n_receivers)]
    transport = UdpTransport([sub.address for sub in subs],
                             pace=pace, loss=loss, seed=seed + 1,
                             manifest_interval=32)
    manifest = session.manifest()
    receivers = [api.ReceiverSession(json.loads(json.dumps(manifest)))
                 for _ in subs]
    errors = []

    def drink(sub, receiver):
        try:
            if in_band_manifest:
                receiver = api.ReceiverSession.from_subscription(
                    sub, timeout=timeout)
                receivers[subs.index(sub)] = receiver
            sub.feed(receiver, timeout=timeout)
        except Exception as exc:  # noqa: BLE001 - reported in the caller
            errors.append(exc)

    threads = [threading.Thread(target=drink, args=(sub, receiver))
               for sub, receiver in zip(subs, receivers)]
    for thread in threads:
        thread.start()
    try:
        report = session.serve(
            transport,
            count=200 * session.total_k,
            stop=lambda: all(r.is_complete for r in receivers))
    finally:
        for thread in threads:
            thread.join(timeout=timeout)
        for sub in subs:
            sub.close()
    if errors:
        raise errors[0]
    return receivers, report, session


@needs_udp
class TestUdpUnicast:
    def test_round_trip_with_in_band_manifest(self):
        data = _random_bytes(120_000, seed=21)
        receivers, report, _ = _serve_to_receivers(
            data, "lt", loss=0.1, pace=25_000, in_band_manifest=True)
        assert receivers[0].is_complete
        assert receivers[0].data() == data
        assert report.manifest_frames >= 1
        assert report.dropped > 0  # the injected loss actually fired

    @pytest.mark.parametrize(
        "spec", ["tornado-b", "lt", "rs", "raptor:eps=0.05"])
    def test_megabyte_at_20_percent_loss(self, spec):
        """Acceptance: >= 1 MiB byte-exact over real asyncio UDP
        loopback with 20% injected loss, per registry spec string."""
        data = _random_bytes(1_100_000, seed=31)
        # rs blocks stay within GF(2^8): at most 128 packets per block.
        block_size = 128 * 1024 if spec == "rs" else 256 * 1024
        receivers, report, session = _serve_to_receivers(
            data, spec, loss=0.2, block_size=block_size, seed=41)
        receiver = receivers[0]
        assert receiver.is_complete
        assert receiver.data() == data
        assert receiver.code_spec == spec
        assert receiver.packets_used >= session.total_k
        assert report.dropped > 0.1 * report.emitted

    def test_eight_concurrent_receivers_single_encoding(self, monkeypatch):
        """Acceptance: one sender serves >= 8 UDP receivers at once
        from a single shared encoding (one encode, period)."""
        from repro.transfer.codec import ObjectCodec

        encodes = []
        original = ObjectCodec.block_encoder

        def counting(self, data, block):
            encodes.append(block)
            return original(self, data, block)

        monkeypatch.setattr(ObjectCodec, "block_encoder", counting)
        data = _random_bytes(300_000, seed=51)
        receivers, report, session = _serve_to_receivers(
            data, "tornado-b", n_receivers=8, loss=0.05, seed=61)
        assert len(receivers) == 8
        for receiver in receivers:
            assert receiver.is_complete
            assert receiver.data() == data
        assert report.destinations == 8
        # One encode pass for the whole fan-out: each block encoded once.
        assert len(encodes) == session.num_blocks

    def test_subscription_times_out_loudly(self):
        sub = UdpSubscription("127.0.0.1:0", timeout=0.2)
        with pytest.raises(ProtocolError, match="within"):
            next(iter(sub.records()))
        sub.close()

    def test_foreign_datagrams_are_counted_not_fatal(self):
        sub = UdpSubscription("127.0.0.1:0", timeout=0.3)
        noise = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        noise.sendto(b"\x07not-a-frame", sub.address)
        with pytest.raises(ProtocolError, match="within"):
            next(iter(sub.records()))
        assert sub.malformed == 1
        noise.close()
        sub.close()

    def test_wrong_size_records_skipped_not_decoded(self):
        """Well-framed foreign data records must not reach the decoder."""
        data = _random_bytes(40_000, seed=23)
        session = api.SenderSession(data, code="lt", seed=3,
                                    block_size=16_384)
        sub = UdpSubscription("127.0.0.1:0", timeout=10.0)
        noise = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        # Valid framing, bogus record size — arrives before any
        # manifest, so it lands in the pre-manifest backlog.
        noise.sendto(pack_frame(FRAME_DATA, b"\x00" * 40), sub.address)
        transport = UdpTransport([sub.address], pace=20_000,
                                 manifest_interval=16)
        holder = {}
        errors = []

        def drink():
            try:
                receiver = api.ReceiverSession.from_subscription(
                    sub, timeout=10.0)
                holder["receiver"] = receiver
                sub.feed(receiver, timeout=10.0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=drink)
        thread.start()
        import time

        time.sleep(0.2)  # let the noise datagram land first
        noise.sendto(pack_frame(FRAME_DATA, b"\x00" * 40), sub.address)
        session.serve(
            transport, count=200 * session.total_k,
            stop=lambda: holder.get("receiver") is not None
            and holder["receiver"].is_complete)
        thread.join(timeout=10.0)
        noise.close()
        sub.close()
        assert not errors, errors
        assert holder["receiver"].data() == data
        assert sub.malformed >= 1  # the stray records were skipped


@needs_udp
class TestUdpMulticast:
    def test_loopback_group_reaches_all_members(self):
        group = "239.66.77.88"
        try:
            first = UdpSubscription(f"{group}:0", timeout=10.0)
            second = UdpSubscription((group, first.address[1]),
                                     timeout=10.0)
        except OSError:
            pytest.skip("multicast membership unavailable")
        data = _random_bytes(60_000, seed=71)
        session = api.SenderSession(data, code="lt", seed=3,
                                    block_size=32_768)
        transport = UdpTransport([first.address], pace=20_000,
                                 manifest_interval=32)
        receivers = [api.ReceiverSession(session.manifest())
                     for _ in range(2)]
        errors = []

        def drink(sub, receiver):
            try:
                sub.feed(receiver, timeout=10.0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=drink, args=pair)
                   for pair in zip((first, second), receivers)]
        for thread in threads:
            thread.start()
        try:
            session.serve(
                transport, count=200 * session.total_k,
                stop=lambda: all(r.is_complete for r in receivers))
        finally:
            for thread in threads:
                thread.join(timeout=10.0)
            first.close()
            second.close()
        if errors:
            pytest.skip(f"multicast delivery unavailable: {errors[0]}")
        for receiver in receivers:
            assert receiver.is_complete
            assert receiver.data() == data


@needs_udp
class TestUdpCli:
    def test_serve_fetch_round_trip(self, tmp_path):
        from repro.cli import main

        data = _random_bytes(80_000, seed=81)
        src = tmp_path / "f.bin"
        src.write_bytes(data)
        out = tmp_path / "back.bin"
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        codes = {}

        def fetch():
            codes["fetch"] = main(["fetch", f"127.0.0.1:{port}", str(out),
                                   "--timeout", "15"])

        fetcher = threading.Thread(target=fetch)
        fetcher.start()
        import time

        time.sleep(0.4)  # let the fetcher bind before spraying
        codes["serve"] = main([
            "serve", str(src), f"127.0.0.1:{port}",
            "--pace", "10000", "--loss", "0.1", "--loss-seed", "5",
            "--count", "2000", "--code", "lt",
            "--manifest-interval", "16"])
        fetcher.join(timeout=30)
        assert codes == {"serve": 0, "fetch": 0}
        assert out.read_bytes() == data

    def test_fetch_times_out_cleanly(self, tmp_path):
        from repro.cli import main

        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(["fetch", f"127.0.0.1:{port}",
                   str(tmp_path / "never.bin"), "--timeout", "0.2"])
        assert rc == 2
        assert not (tmp_path / "never.bin").exists()


class TestFileCli:
    def test_serve_fetch_over_file_transport(self, tmp_path):
        from repro.cli import main

        data = _random_bytes(40_000, seed=91)
        src = tmp_path / "f.bin"
        src.write_bytes(data)
        out_dir = tmp_path / "out"
        assert main(["serve", str(src), str(out_dir),
                     "--transport", "file", "--loss", "0.15",
                     "--code", "tornado-b", "--block-size", "16384"]) == 0
        back = tmp_path / "back.bin"
        assert main(["fetch", str(out_dir), str(back),
                     "--transport", "file"]) == 0
        assert back.read_bytes() == data

    def test_mismatched_transport_flags_rejected(self, tmp_path, capsys):
        """Flags the chosen transport would ignore exit 2, not no-op."""
        from repro.cli import main

        src = tmp_path / "f.bin"
        src.write_bytes(b"x" * 4096)
        cases = [
            ["serve", str(src), str(tmp_path / "o"), "--transport",
             "file", "--duration", "5"],
            ["serve", str(src), str(tmp_path / "o"), "--transport",
             "file", "--pace", "100"],
            ["serve", str(src), str(tmp_path / "o"), "--transport",
             "file", "--manifest-interval", "8"],
            ["serve", str(src), "127.0.0.1:1", "--count", "1",
             "--extra", "3"],
        ]
        for argv in cases:
            assert main(argv) == 2, argv
            assert "only applies" in capsys.readouterr().err
