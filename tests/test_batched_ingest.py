"""Batched decode intake: equivalence, exactness, and the finisher.

The batch ingest path (droplet blocks through ``add_packets`` /
``add_equations`` / ``ReceiverSession.receive_records``) promises to be
*observationally equivalent* to one-at-a-time feeding: identical
recovered bytes, and — through the provable packet-deficit chunking —
identical reception counters at the moment of completion.  These tests
pin both halves of the promise, plus the GF(2) structured inactivation
finisher on hand-built stalled systems where pure peeling provably
cannot start.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.codes.backend import use_backend
from repro.codes.peeling import PeelingEngine
from repro.codes.registry import build_code
from repro.fountain.client import FountainClient

from tests._oracles import assert_batched_identical, make_source

# -- batched vs sequential intake, all families ------------------------------

#: (spec, k) pairs spanning the decoder implementations: the LT batch
#: path, the Tornado engine, and the registry's generic SetDecoder.
BATCH_CASES = [
    ("lt", 2),
    ("lt", 48),
    ("lt:c=0.05,delta=0.5", 100),
    ("tornado-b", 32),
    ("tornado-a", 129),
    ("rs", 16),
    ("interleaved", 16),
]


@pytest.mark.parametrize("seed", [1, 12])
@pytest.mark.parametrize("spec,k", BATCH_CASES,
                         ids=[f"{s}-k{k}" for s, k in BATCH_CASES])
def test_batched_intake_matches_sequential(spec, k, seed):
    run = assert_batched_identical(spec, k, payload_size=24, seed=seed)
    if run.complete:
        assert run.recovered == make_source(k, 24, seed).tobytes()


# -- property: arrival order and batch partition are irrelevant --------------

_FILE_SIZE = 8 * 1024
_PACKET = 128
_BLOCK_PACKETS = 16


def _stream_records(code_spec):
    """A deterministic sender stream (3x the source count) as records."""
    rng = np.random.default_rng(0xFEED)
    data = rng.integers(0, 256, size=_FILE_SIZE, dtype=np.uint8).tobytes()
    sender = api.SenderSession(data, code=code_spec, packet_size=_PACKET,
                               block_size=_BLOCK_PACKETS * _PACKET, seed=21)
    records = [packet.to_bytes()
               for packet in sender.packets(3 * sender.total_k)]
    return data, sender.manifest(), records


_LT_STREAM = _stream_records("lt")


@settings(max_examples=10, deadline=None)
@given(order_seed=st.integers(0, 2 ** 32 - 1),
       batch_sizes=st.lists(st.integers(1, 64), min_size=1, max_size=8))
def test_any_order_and_batching_is_counter_exact(order_seed, batch_sizes):
    """Shuffled arrivals, arbitrary batch partition: bytes and counters match.

    The batched session must consume the same packets as per-record
    feeding of the identical shuffled stream (the deficit chunking makes
    the counters *equal*, which subsumes the same-or-fewer guarantee)
    and reconstruct the identical object bytes.
    """
    data, manifest, records = _LT_STREAM
    order = np.random.default_rng(order_seed).permutation(len(records))
    shuffled = [records[i] for i in order]

    sequential = api.ReceiverSession(manifest)
    for record in shuffled:
        if sequential.receive_record(record):
            break
    assert sequential.is_complete

    batched = api.ReceiverSession(manifest)
    pos = cursor = 0
    while pos < len(shuffled) and not batched.is_complete:
        take = batch_sizes[cursor % len(batch_sizes)]
        cursor += 1
        batched.receive_records(shuffled[pos:pos + take])
        pos += take
    assert batched.is_complete
    assert batched.data() == sequential.data() == data
    assert batched.packets_used == sequential.packets_used
    assert batched.stats() == sequential.stats()


# -- the inactivation finisher on hand-built stalled systems -----------------

def _xor_rows(source, nodes):
    out = source[nodes[0]].copy()
    for node in nodes[1:]:
        out ^= source[node]
    return out


def _feed_system(engine, source, rows):
    for nodes in rows:
        engine.add_equation(np.asarray(nodes, dtype=np.int64),
                            _xor_rows(source, nodes))


#: every row has degree >= 2, so the peeling ripple can never start;
#: the 4-cycle spans rank 3 and the odd-weight row closes rank 4.
_STALLED_FULL_RANK = [[0, 1], [1, 2], [2, 3], [0, 3], [0, 1, 2]]


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_finisher_solves_fully_stalled_system(backend):
    source = make_source(4, 8, seed=5)
    with use_backend(backend):
        engine = PeelingEngine(4, payload_size=8, inactivation_limit=4)
        _feed_system(engine, source, _STALLED_FULL_RANK)
        assert not engine.is_complete  # no ripple ever started
        engine.maybe_inactivate()
        assert engine.is_complete
        assert np.array_equal(engine.source_data(), source)


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_finisher_failed_attempt_then_closing_row(backend):
    """A singular stall records its deficit; the closing row finishes it.

    ``{0,1},{1,2},{0,2}`` is a dependent cycle (rank 2), ``{2,3}``
    brings rank 3 of 4 — the attempt must fail without recovering
    anything, and the odd-weight row ``{0,1,2}`` (independent of the
    all-even span) must complete the decode on arrival.
    """
    source = make_source(4, 8, seed=9)
    with use_backend(backend):
        engine = PeelingEngine(4, payload_size=8, inactivation_limit=4)
        _feed_system(engine, source, [[0, 1], [1, 2], [0, 2], [2, 3]])
        engine.maybe_inactivate()
        assert not engine.is_complete
        _feed_system(engine, source, [[0, 1, 2]])
        engine.maybe_inactivate()
        assert engine.is_complete
        assert np.array_equal(engine.source_data(), source)


def test_finisher_solves_batch_entered_system():
    """The stalled system arriving as one add_equations batch decodes too."""
    source = make_source(4, 8, seed=5)
    rows = _STALLED_FULL_RANK
    indptr = np.cumsum([0] + [len(r) for r in rows]).astype(np.int64)
    flat = np.concatenate([np.asarray(r, dtype=np.int64) for r in rows])
    rhs = np.stack([_xor_rows(source, r) for r in rows])
    engine = PeelingEngine(4, payload_size=8, inactivation_limit=4)
    engine.add_equations(indptr, flat, rhs)
    engine.maybe_inactivate()
    assert engine.is_complete
    assert np.array_equal(engine.source_data(), source)


def test_finisher_respects_inactivation_limit():
    """With the fallback disabled the stalled system must stay stalled."""
    source = make_source(4, 8, seed=5)
    engine = PeelingEngine(4, payload_size=8, inactivation_limit=0)
    _feed_system(engine, source, _STALLED_FULL_RANK)
    engine.maybe_inactivate()
    assert not engine.is_complete


# -- duplicate droplets are filtered before the decoder ----------------------

def test_duplicate_droplet_ids_never_reach_decoder():
    """Repeats cost a set lookup, not a decoder call.

    Every droplet id is delivered three times (mirrored-server style);
    the client's decoder must be invoked at most once per distinct id,
    through both the scalar and the batched receive paths.
    """
    k = 24
    source = make_source(k, 16, seed=2)
    code = build_code("lt", k, seed=2)
    encoded = code.encode(source, 4 * k)

    scalar = FountainClient(code, payload_size=16)
    for index in range(encoded.shape[0]):
        for _ in range(3):
            if scalar.receive_index(index, encoded[index]):
                break
        if scalar.is_complete:
            break
    assert scalar.is_complete
    distinct = scalar.distinct_received
    assert scalar.decoder_calls == distinct
    assert scalar.total_received > distinct
    assert scalar._decoder.packets_added == distinct
    assert scalar._decoder.duplicates_seen == 0

    batched = FountainClient(code, payload_size=16)
    ids = np.repeat(np.arange(encoded.shape[0]), 3)
    batched.receive_many(ids, encoded[ids])
    assert batched.is_complete
    # One decoder call per deficit chunk, never one per duplicate.
    assert batched.decoder_calls <= batched.distinct_received
    assert batched._decoder.packets_added == batched.distinct_received
    assert np.array_equal(batched.source_data(), source)
