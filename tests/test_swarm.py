"""Swarm scenario engine: declarative scenarios, vectorized engine,
exact-replay agreement, CLI."""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, ProtocolError
from repro.sim.swarm import (
    LossSpec,
    ReceiverGroup,
    Scenario,
    SwarmSimulator,
    load_scenario,
    replay_receivers,
    run_scenario,
)

SCENARIOS_DIR = pathlib.Path(__file__).resolve().parent.parent \
    / "examples" / "scenarios"


def tiny_scenario(**overrides):
    """A fast homogeneous scenario for engine tests."""
    fields = dict(
        name="tiny",
        code="tornado-b",
        file_size=256 * 1024,
        packet_size=1024,
        block_packets=64,
        threshold_trials=16,
        seed=7,
        groups=[ReceiverGroup(name="all", count=200,
                              loss=LossSpec.make("bernoulli", p=0.1))],
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestLossSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            LossSpec.make("weibull", p=0.1)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ParameterError):
            LossSpec.make("bernoulli", q=0.1)

    def test_rate_bounds_checked(self):
        with pytest.raises(ParameterError):
            LossSpec.make("bernoulli", p=1.0)
        with pytest.raises(ParameterError):
            LossSpec.make("gilbert", rate=0.2, burst=0.5)

    def test_range_normalised(self):
        spec = LossSpec.make("bernoulli", p=[0.1, 0.3])
        assert spec.param("p") == (0.1, 0.3)
        assert spec.to_dict() == {"kind": "bernoulli", "p": [0.1, 0.3]}

    def test_degenerate_range_collapses(self):
        assert LossSpec.make("bernoulli", p=[0.2, 0.2]).param("p") == 0.2

    def test_defaults_via_param(self):
        assert LossSpec.make("gilbert").param("burst") == 6.0


class TestReceiverGroup:
    def test_count_positive(self):
        with pytest.raises(ParameterError):
            ReceiverGroup(name="g", count=0)

    def test_loss_dict_coerced(self):
        group = ReceiverGroup(name="g", count=3,
                              loss={"kind": "bernoulli", "p": 0.2})
        assert isinstance(group.loss, LossSpec)

    def test_rate_fraction_and_level_exclusive(self):
        with pytest.raises(ParameterError):
            ReceiverGroup(name="g", count=1, rate_fraction=0.5, level=1)

    def test_rate_fraction_bounds(self):
        with pytest.raises(ParameterError):
            ReceiverGroup(name="g", count=1, rate_fraction=0.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ParameterError):
            ReceiverGroup.from_dict({"name": "g", "count": 1, "speed": 9})


class TestScenario:
    def test_round_trip_explicit(self):
        scenario = Scenario(
            name="rt", code="lt:c=0.05,delta=0.5",
            file_size=100_000, packet_size=500, block_packets=32,
            schedule="sequential", seed=3, layers=3,
            groups=[
                ReceiverGroup(name="a", count=5,
                              loss=LossSpec.make("gilbert",
                                                 rate=[0.1, 0.2], burst=4),
                              join=[0, 100], leave=5000, level=2),
                ReceiverGroup(name="b", count=7,
                              loss=LossSpec.make("trace", pool=4,
                                                 length=2000),
                              rate_fraction=[0.5, 1.0]),
            ])
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_round_trip_is_json(self):
        scenario = tiny_scenario()
        json.dumps(scenario.to_dict())  # must be plain JSON types

    def test_file_round_trip(self, tmp_path):
        scenario = tiny_scenario()
        path = tmp_path / "s.json"
        scenario.save(path)
        assert load_scenario(path) == scenario

    def test_code_canonicalised(self):
        scenario = tiny_scenario(code="lt:delta=0.1,c=0.03")
        assert scenario.code == "lt:c=0.03,delta=0.1"

    def test_bad_code_rejected(self):
        with pytest.raises(ParameterError):
            tiny_scenario(code="turbo-9000")

    def test_bad_schedule_rejected(self):
        with pytest.raises(ParameterError):
            tiny_scenario(schedule="fifo")

    def test_level_requires_layers(self):
        with pytest.raises(ParameterError):
            tiny_scenario(groups=[ReceiverGroup(name="g", count=1,
                                                level=1)])

    def test_level_bounds_checked(self):
        with pytest.raises(ParameterError):
            tiny_scenario(layers=2,
                          groups=[ReceiverGroup(name="g", count=1,
                                                level=5)])

    def test_not_a_scenario_dict(self):
        with pytest.raises(ProtocolError):
            Scenario.from_dict({"kind": "transfer"})

    def test_unknown_field_rejected(self):
        data = tiny_scenario().to_dict()
        data["pacing"] = 9
        with pytest.raises(ProtocolError):
            Scenario.from_dict(data)

    def test_scaled_preserves_proportions(self):
        scenario = tiny_scenario(groups=[
            ReceiverGroup(name="big", count=300),
            ReceiverGroup(name="small", count=100),
        ])
        scaled = scenario.scaled(40)
        assert [g.count for g in scaled.groups] == [30, 10]
        assert scaled.scaled(2).total_receivers >= 2  # every group >= 1

    def test_layer_rate_fractions(self):
        scenario = tiny_scenario(
            layers=4,
            groups=[ReceiverGroup(name="modem", count=1, level=0),
                    ReceiverGroup(name="lan", count=1, level=3)])
        assert scenario.group_rate_fraction(scenario.groups[0]) \
            == pytest.approx(1 / 8)
        assert scenario.group_rate_fraction(scenario.groups[1]) == 1.0


# Hypothesis strategies for scenario round-trips. Kept structurally
# small: round-tripping exercises the (de)serialisation logic, not the
# simulator.
_range_or_scalar = st.one_of(
    st.floats(0.01, 0.4),
    st.tuples(st.floats(0.01, 0.2), st.floats(0.21, 0.4)).map(list))

_loss_specs = st.one_of(
    st.builds(lambda p: LossSpec.make("bernoulli", p=p), _range_or_scalar),
    st.builds(lambda r, b: LossSpec.make("gilbert", rate=r, burst=b),
              _range_or_scalar, st.floats(1.0, 20.0)),
    st.builds(lambda n, length: LossSpec.make("trace", pool=n,
                                              length=length),
              st.integers(1, 8), st.integers(1000, 5000)),
)

_groups = st.builds(
    lambda name, count, loss, join: ReceiverGroup(
        name=name, count=count, loss=loss, join=join),
    st.text(alphabet="abcdefgh", min_size=1, max_size=8),
    st.integers(1, 50),
    _loss_specs,
    st.one_of(st.floats(0, 1000),
              st.tuples(st.floats(0, 100), st.floats(100, 1000)).map(list)),
)

_scenarios = st.builds(
    lambda name, groups, code, packets, block, schedule, seed: Scenario(
        name=name, groups=groups, code=code,
        file_size=packets * 512, packet_size=512, block_packets=block,
        schedule=schedule, seed=seed),
    st.text(alphabet="xyz-", min_size=1, max_size=10),
    st.lists(_groups, min_size=1, max_size=3),
    st.sampled_from(["tornado-a", "tornado-b", "lt", "rs",
                     "lt:c=0.05,delta=0.5"]),
    st.integers(1, 2000),
    st.integers(4, 256),
    st.sampled_from(["interleave", "sequential"]),
    st.integers(0, 2 ** 31),
)


class TestScenarioProperties:
    @given(scenario=_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip(self, scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    @given(scenario=_scenarios)
    @settings(max_examples=30, deadline=None)
    def test_dict_is_json_stable(self, scenario):
        once = json.dumps(scenario.to_dict(), sort_keys=True)
        again = json.dumps(
            Scenario.from_json(scenario.to_json()).to_dict(),
            sort_keys=True)
        assert once == again


class TestSwarmEngine:
    def test_lossless_mds_is_exact(self):
        # RS thresholds are exactly k and the channel delivers
        # everything: every receiver finishes at exactly one sweep with
        # zero overhead.
        scenario = tiny_scenario(
            code="rs", threshold_trials=4,
            groups=[ReceiverGroup(name="all", count=50,
                                  loss=LossSpec.make("bernoulli", p=0.0))])
        result = SwarmSimulator(scenario).run()
        assert result.completion_rate == 1.0
        assert np.allclose(result.overhead, 0.0)
        assert np.allclose(result.completion_slot, result.total_k)

    def test_deterministic_given_seed(self):
        a = SwarmSimulator(tiny_scenario()).run()
        b = SwarmSimulator(tiny_scenario()).run()
        assert np.array_equal(a.overhead, b.overhead)
        assert np.array_equal(a.completion_slot, b.completion_slot)

    def test_heavier_loss_costs_more(self):
        light = SwarmSimulator(tiny_scenario()).run()
        heavy = SwarmSimulator(tiny_scenario(
            groups=[ReceiverGroup(name="all", count=200,
                                  loss=LossSpec.make("bernoulli",
                                                     p=0.4))])).run()
        assert heavy.completion_slot.mean() > light.completion_slot.mean()

    def test_early_leavers_never_complete(self):
        scenario = tiny_scenario(groups=[
            ReceiverGroup(name="quitters", count=40,
                          loss=LossSpec.make("bernoulli", p=0.1),
                          leave=30.0)])
        result = SwarmSimulator(scenario).run()
        assert result.completion_rate == 0.0
        assert np.isnan(result.overhead).all()
        assert np.isinf(result.completion_slot).all()

    def test_late_joiners_finish_later(self):
        scenario = tiny_scenario(groups=[
            ReceiverGroup(name="early", count=100,
                          loss=LossSpec.make("bernoulli", p=0.1)),
            ReceiverGroup(name="late", count=100,
                          loss=LossSpec.make("bernoulli", p=0.1),
                          join=1000.0)])
        result = SwarmSimulator(scenario).run()
        groups = result.group_summaries()
        early = result.completion_slot[result.group_index == 0]
        late = result.completion_slot[result.group_index == 1]
        assert late.mean() > early.mean()
        assert {g["group"] for g in groups} == {"early", "late"}

    def test_workers_match_single_process_statistics(self):
        scenario = tiny_scenario()
        single = SwarmSimulator(scenario).run()
        fanned = SwarmSimulator(scenario).run(workers=2)
        assert fanned.completion_rate == single.completion_rate
        assert fanned.overhead_percentile(50) == pytest.approx(
            single.overhead_percentile(50), abs=0.03)

    def test_overhead_cdf_monotone(self):
        result = SwarmSimulator(tiny_scenario()).run()
        grid, frac = result.overhead_cdf(points=20)
        assert (np.diff(frac) >= 0).all()
        assert frac[-1] == pytest.approx(1.0)

    def test_summary_is_json(self):
        result = SwarmSimulator(tiny_scenario()).run(spot_check=3)
        json.dumps(result.summary())


class TestStructuralAgreement:
    """The regression bar: vectorized results match exact replays."""

    @pytest.mark.parametrize("code", ["tornado-b", "lt", "rs"])
    def test_engine_matches_exact_replay(self, code):
        scenario = tiny_scenario(
            code=code, threshold_trials=12,
            groups=[ReceiverGroup(name="all", count=300,
                                  loss=LossSpec.make("bernoulli",
                                                     p=[0.05, 0.25]))])
        result = SwarmSimulator(scenario).run(spot_check=20)
        spot = result.spot_check
        assert spot.replay_completed.all()
        assert spot.agrees(0.05), (
            f"structural {spot.structural_mean:.4f} vs replay "
            f"{spot.replay_mean:.4f} (noise {spot.noise_scale:.4f})")

    def test_rate_thinned_carousel_duplicates_modelled(self):
        # A 20%-rate receiver on a fixed-rate carousel pays duplicate
        # wrap-arounds; the distinct-coverage correction must track the
        # real client through several revolutions.
        scenario = tiny_scenario(
            max_sweeps=60, threshold_trials=12,
            groups=[ReceiverGroup(name="slow", count=150,
                                  loss=LossSpec.make("bernoulli", p=0.1),
                                  rate_fraction=0.2)])
        result = SwarmSimulator(scenario).run(spot_check=12)
        assert result.completion_rate == 1.0
        # Duplicates make the overhead far exceed the lossless ideal.
        assert result.overhead_percentile(50) > 0.2
        assert result.spot_check.agrees(0.08)

    def test_replay_receivers_standalone(self):
        scenario = tiny_scenario()
        overhead, completed = replay_receivers(scenario, [0, 5, 7])
        assert completed.all()
        assert (overhead >= 0).all()

    def test_spot_check_completion_mismatch_disagrees(self):
        # The model says everyone finishes but most exact replays do
        # not: that is the gross failure the spot check exists for, and
        # it must not pass by vacuous noise bounds.
        from repro.sim.swarm import SpotCheckResult

        spot = SpotCheckResult(
            receiver_ids=np.arange(8),
            structural_overhead=np.full(8, 0.06),
            replay_overhead=np.array([0.05] + [np.nan] * 7),
            replay_completed=np.array([True] + [False] * 7))
        assert not spot.agrees()

    def test_spot_check_single_sample_cannot_agree(self):
        from repro.sim.swarm import SpotCheckResult

        spot = SpotCheckResult(
            receiver_ids=np.array([0]),
            structural_overhead=np.array([0.06]),
            replay_overhead=np.array([0.06]),
            replay_completed=np.array([True]))
        assert not spot.agrees()

    def test_spot_check_agrees_when_nobody_completes(self):
        from repro.sim.swarm import SpotCheckResult

        spot = SpotCheckResult(
            receiver_ids=np.arange(3),
            structural_overhead=np.full(3, np.nan),
            replay_overhead=np.full(3, np.nan),
            replay_completed=np.zeros(3, dtype=bool))
        assert spot.agrees()


class TestCommittedScenarios:
    @pytest.mark.parametrize("name", [
        "flash_crowd", "satellite_longhaul", "mobile_traces",
        "layered_tiers", "midstream_joiners"])
    def test_loads_and_validates(self, name):
        scenario = load_scenario(SCENARIOS_DIR / f"{name}.json")
        assert scenario.total_receivers >= 10_000

    def test_flash_crowd_scaled_run(self):
        result = run_scenario(SCENARIOS_DIR / "flash_crowd.json",
                              receivers=1500)
        assert result.completion_rate == 1.0
        assert result.summary()["overhead_p99"] < 0.5


class TestSwarmCli:
    def test_run_with_json_output(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "s.json"
        tiny_scenario().save(path)
        out = tmp_path / "summary.json"
        assert main(["swarm", "run", str(path), "--receivers", "80",
                     "--spot-check", "4", "--json", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "reception overhead" in printed
        assert "spot check" in printed
        summary = json.loads(out.read_text())
        assert summary["receivers"] == 80
        assert summary["completion_rate"] == 1.0
        assert summary["spot_check"]["sample_size"] == 4

    def test_compare_tabulates_all(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        for code in ("tornado-b", "rs"):
            path = tmp_path / f"{code}.json"
            tiny_scenario(name=f"cmp-{code}", code=code,
                          threshold_trials=6).save(path)
            paths.append(str(path))
        assert main(["swarm", "compare", *paths,
                     "--receivers", "60"]) == 0
        printed = capsys.readouterr().out
        assert "cmp-tornado-b" in printed and "cmp-rs" in printed

    def test_missing_scenario_errors(self, tmp_path):
        from repro.cli import main

        assert main(["swarm", "run", str(tmp_path / "nope.json")]) == 2
