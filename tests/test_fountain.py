"""Fountain layer: packet framing, carousel, client, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.reed_solomon import cauchy_code
from repro.codes.tornado.presets import tornado_a
from repro.errors import DecodeFailure, ParameterError, ProtocolError
from repro.fountain.carousel import CarouselServer
from repro.fountain.client import ClientMode, FountainClient
from repro.fountain.metrics import ReceptionStats
from repro.fountain.packets import HEADER_SIZE, EncodingPacket, PacketHeader


class TestPackets:
    def test_header_is_12_bytes(self):
        assert HEADER_SIZE == 12
        assert len(PacketHeader(1, 2, 3).pack()) == 12

    @given(index=st.integers(0, 2**32 - 1), serial=st.integers(0, 2**32 - 1),
           group=st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_header_roundtrip(self, index, serial, group):
        header = PacketHeader(index, serial, group)
        assert PacketHeader.unpack(header.pack()) == header

    def test_header_range_checks(self):
        with pytest.raises(ProtocolError):
            PacketHeader(-1, 0, 0)
        with pytest.raises(ProtocolError):
            PacketHeader(2**32, 0, 0)

    def test_unpack_short_buffer(self):
        with pytest.raises(ProtocolError):
            PacketHeader.unpack(b"short")

    def test_packet_roundtrip(self):
        payload = np.arange(20, dtype=np.uint8)
        pkt = EncodingPacket(PacketHeader(7, 9, 1), payload)
        restored = EncodingPacket.from_bytes(pkt.to_bytes())
        assert restored.header == pkt.header
        assert np.array_equal(restored.payload, payload)
        assert pkt.wire_size == HEADER_SIZE + 20


class TestCarousel:
    def test_cycles_through_permutation(self):
        code = cauchy_code(8)
        rng = np.random.default_rng(0)
        enc = code.encode(rng.integers(0, 256, size=(8, 4), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=1)
        indices = [p.index for p in server.packets(2 * code.n)]
        assert sorted(indices[:code.n]) == list(range(code.n))
        assert indices[:code.n] == indices[code.n:]

    def test_serials_increase(self):
        code = cauchy_code(4)
        enc = code.encode(np.zeros((4, 2), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=2)
        serials = [p.header.serial for p in server.packets(10)]
        assert serials == list(range(10))

    def test_index_stream_stateless(self):
        code = cauchy_code(8)
        server = CarouselServer(code, seed=3)
        a = server.index_stream(20)
        b = server.index_stream(20)
        assert np.array_equal(a, b)

    def test_explicit_order_validated(self):
        code = cauchy_code(4)
        with pytest.raises(ParameterError):
            CarouselServer(code, order=[0, 1, 2])  # not a full permutation
        server = CarouselServer(code, order=list(range(code.n)))
        assert np.array_equal(server.index_stream(code.n),
                              np.arange(code.n))

    def test_index_only_cannot_emit_payloads(self):
        server = CarouselServer(cauchy_code(4), seed=4)
        with pytest.raises(ParameterError):
            next(server.packets(1))

    def test_reset(self):
        code = cauchy_code(4)
        enc = code.encode(np.zeros((4, 2), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=5)
        first = [p.index for p in server.packets(3)]
        server.reset()
        assert [p.index for p in server.packets(3)] == first


class TestClient:
    def _run_client(self, mode, loss_seed=0):
        code = tornado_a(150, seed=6)
        rng = np.random.default_rng(7)
        src = rng.integers(0, 256, size=(150, 8), dtype=np.uint8)
        enc = code.encode(src)
        server = CarouselServer(code, enc, seed=8)
        client = FountainClient(code, mode=mode)
        loss_rng = np.random.default_rng(loss_seed)
        for packet in server.packets(20 * code.n):
            if loss_rng.random() < 0.3:
                continue
            if client.receive(packet):
                break
        return client, src

    @pytest.mark.parametrize("mode", [ClientMode.INCREMENTAL,
                                      ClientMode.STATISTICAL])
    def test_client_reconstructs(self, mode):
        client, src = self._run_client(mode)
        assert client.is_complete
        assert np.array_equal(client.source_data(), src)

    def test_statistical_makes_attempts(self):
        client, _ = self._run_client(ClientMode.STATISTICAL)
        assert client.decode_attempts >= 1

    def test_metrics_identity(self):
        client, _ = self._run_client(ClientMode.INCREMENTAL)
        stats = client.stats()
        assert stats.efficiency == pytest.approx(
            stats.coding_efficiency * stats.distinctness_efficiency)

    def test_incomplete_client_raises(self):
        code = tornado_a(150, seed=6)
        client = FountainClient(code)
        with pytest.raises(DecodeFailure):
            client.source_data()

    def test_rs_client(self):
        code = cauchy_code(20)
        rng = np.random.default_rng(9)
        src = rng.integers(0, 256, size=(20, 4), dtype=np.uint8)
        enc = code.encode(src)
        server = CarouselServer(code, enc, seed=10)
        client = FountainClient(code)
        for packet in server.packets(code.n):
            if client.receive(packet):
                break
        assert client.distinct_received == code.k  # MDS: exactly k
        assert np.array_equal(client.source_data(), src)


class TestReceptionStats:
    def test_identity(self):
        stats = ReceptionStats(100, 110, 120)
        assert stats.efficiency == pytest.approx(100 / 120)
        assert stats.coding_efficiency == pytest.approx(100 / 110)
        assert stats.distinctness_efficiency == pytest.approx(110 / 120)
        assert stats.efficiency == pytest.approx(
            stats.coding_efficiency * stats.distinctness_efficiency)
        assert stats.duplicates == 10
        assert stats.reception_overhead == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ReceptionStats(0, 1, 1)
        with pytest.raises(ParameterError):
            ReceptionStats(10, 5, 4)

    @given(k=st.integers(1, 1000), distinct=st.integers(1, 2000),
           extra=st.integers(0, 500))
    @settings(max_examples=60)
    def test_identity_property(self, k, distinct, extra):
        stats = ReceptionStats(k, distinct, distinct + extra)
        assert stats.efficiency == pytest.approx(
            stats.coding_efficiency * stats.distinctness_efficiency)

    def test_impossible_counters_rejected(self):
        with pytest.raises(ParameterError):
            ReceptionStats(10, 0, 5)
