"""Fountain layer: packet framing, carousel, client, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.base import bytes_to_packets, packets_to_bytes
from repro.codes.lt import LTCode
from repro.codes.reed_solomon import cauchy_code
from repro.codes.tornado.presets import tornado_a
from repro.errors import DecodeFailure, ParameterError, ProtocolError
from repro.fountain.carousel import CarouselServer
from repro.fountain.client import ClientMode, FountainClient
from repro.fountain.metrics import ReceptionStats
from repro.fountain.packets import (
    HEADER_SIZE,
    SERIAL_MODULUS,
    EncodingPacket,
    HeaderSequencer,
    PacketHeader,
)
from repro.fountain.rateless import RatelessServer


class TestPackets:
    def test_header_is_12_bytes(self):
        assert HEADER_SIZE == 12
        assert len(PacketHeader(1, 2, 3).pack()) == 12

    @given(index=st.integers(0, 2**32 - 1), serial=st.integers(0, 2**32 - 1),
           group=st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_header_roundtrip(self, index, serial, group):
        header = PacketHeader(index, serial, group)
        assert PacketHeader.unpack(header.pack()) == header

    def test_header_range_checks(self):
        with pytest.raises(ProtocolError):
            PacketHeader(-1, 0, 0)
        with pytest.raises(ProtocolError):
            PacketHeader(2**32, 0, 0)

    def test_unpack_short_buffer(self):
        with pytest.raises(ProtocolError):
            PacketHeader.unpack(b"short")

    def test_packet_roundtrip(self):
        payload = np.arange(20, dtype=np.uint8)
        pkt = EncodingPacket(PacketHeader(7, 9, 1), payload)
        restored = EncodingPacket.from_bytes(pkt.to_bytes())
        assert restored.header == pkt.header
        assert np.array_equal(restored.payload, payload)
        assert pkt.wire_size == HEADER_SIZE + 20


class TestCarousel:
    def test_cycles_through_permutation(self):
        code = cauchy_code(8)
        rng = np.random.default_rng(0)
        enc = code.encode(rng.integers(0, 256, size=(8, 4), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=1)
        indices = [p.index for p in server.packets(2 * code.n)]
        assert sorted(indices[:code.n]) == list(range(code.n))
        assert indices[:code.n] == indices[code.n:]

    def test_serials_increase(self):
        code = cauchy_code(4)
        enc = code.encode(np.zeros((4, 2), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=2)
        serials = [p.header.serial for p in server.packets(10)]
        assert serials == list(range(10))

    def test_index_stream_stateless(self):
        code = cauchy_code(8)
        server = CarouselServer(code, seed=3)
        a = server.index_stream(20)
        b = server.index_stream(20)
        assert np.array_equal(a, b)

    def test_explicit_order_validated(self):
        code = cauchy_code(4)
        with pytest.raises(ParameterError):
            CarouselServer(code, order=[0, 1, 2])  # not a full permutation
        server = CarouselServer(code, order=list(range(code.n)))
        assert np.array_equal(server.index_stream(code.n),
                              np.arange(code.n))

    def test_index_only_cannot_emit_payloads(self):
        server = CarouselServer(cauchy_code(4), seed=4)
        with pytest.raises(ParameterError):
            next(server.packets(1))

    def test_reset(self):
        code = cauchy_code(4)
        enc = code.encode(np.zeros((4, 2), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=5)
        first = [p.index for p in server.packets(3)]
        server.reset()
        assert [p.index for p in server.packets(3)] == first


class TestClient:
    def _run_client(self, mode, loss_seed=0):
        code = tornado_a(150, seed=6)
        rng = np.random.default_rng(7)
        src = rng.integers(0, 256, size=(150, 8), dtype=np.uint8)
        enc = code.encode(src)
        server = CarouselServer(code, enc, seed=8)
        client = FountainClient(code, mode=mode)
        loss_rng = np.random.default_rng(loss_seed)
        for packet in server.packets(20 * code.n):
            if loss_rng.random() < 0.3:
                continue
            if client.receive(packet):
                break
        return client, src

    @pytest.mark.parametrize("mode", [ClientMode.INCREMENTAL,
                                      ClientMode.STATISTICAL])
    def test_client_reconstructs(self, mode):
        client, src = self._run_client(mode)
        assert client.is_complete
        assert np.array_equal(client.source_data(), src)

    def test_statistical_makes_attempts(self):
        client, _ = self._run_client(ClientMode.STATISTICAL)
        assert client.decode_attempts >= 1

    def test_metrics_identity(self):
        client, _ = self._run_client(ClientMode.INCREMENTAL)
        stats = client.stats()
        assert stats.efficiency == pytest.approx(
            stats.coding_efficiency * stats.distinctness_efficiency)

    def test_incomplete_client_raises(self):
        code = tornado_a(150, seed=6)
        client = FountainClient(code)
        with pytest.raises(DecodeFailure):
            client.source_data()

    def test_rs_client(self):
        code = cauchy_code(20)
        rng = np.random.default_rng(9)
        src = rng.integers(0, 256, size=(20, 4), dtype=np.uint8)
        enc = code.encode(src)
        server = CarouselServer(code, enc, seed=10)
        client = FountainClient(code)
        for packet in server.packets(code.n):
            if client.receive(packet):
                break
        assert client.distinct_received == code.k  # MDS: exactly k
        assert np.array_equal(client.source_data(), src)


class TestBytesPacketsRoundtrip:
    @given(length=st.integers(0, 4000),
           packet_size=st.integers(1, 257))
    @settings(max_examples=80)
    def test_uint8_roundtrip(self, length, packet_size):
        data = bytes((i * 31 + 7) % 256 for i in range(length))
        packets = bytes_to_packets(data, packet_size)
        assert packets.shape == (-(-length // packet_size), packet_size)
        assert packets_to_bytes(packets, length) == data

    @given(length=st.integers(0, 2000),
           packet_words=st.integers(1, 64))
    @settings(max_examples=60)
    def test_uint16_roundtrip(self, length, packet_words):
        data = bytes((i * 17 + 3) % 256 for i in range(length))
        packet_size = 2 * packet_words
        packets = bytes_to_packets(data, packet_size, dtype=np.uint16)
        assert packets.dtype == np.uint16
        assert packets.shape == (-(-length // packet_size), packet_words)
        assert packets_to_bytes(packets, length) == data

    def test_zero_length_input(self):
        packets = bytes_to_packets(b"", 64)
        assert packets.shape == (0, 64)
        assert packets_to_bytes(packets, 0) == b""

    def test_odd_length_pads_tail_with_zeros(self):
        packets = bytes_to_packets(b"\xff" * 5, 4)
        assert packets.shape == (2, 4)
        assert packets[1].tolist() == [255, 0, 0, 0]

    def test_odd_packet_size_rejected_for_uint16(self):
        with pytest.raises(ParameterError):
            bytes_to_packets(b"abc", 3, dtype=np.uint16)


class TestHeaderSequencer:
    def _tiny_rateless(self, **kwargs):
        code = LTCode(8, seed=0)
        src = np.zeros((8, 4), dtype=np.uint8)
        return RatelessServer(code, src, **kwargs)

    def test_shared_across_carousel_and_rateless(self):
        """One sequencer, two server shapes: serials stay strictly
        monotone across the merged stream and every header carries the
        sequencer's group."""
        sequencer = HeaderSequencer(group=3)
        code = cauchy_code(8)
        enc = code.encode(np.zeros((8, 4), dtype=np.uint8))
        carousel = CarouselServer(code, enc, seed=1, sequencer=sequencer)
        rateless = self._tiny_rateless(sequencer=sequencer)
        merged = []
        streams = (carousel.packets(), rateless.packets())
        for _ in range(6):
            for stream in streams:
                merged.append(next(stream))
        assert [p.header.serial for p in merged] == list(range(12))
        assert all(p.header.group == 3 for p in merged)
        # each server still walks its own index sequence
        assert [p.index for p in merged[1::2]] == list(range(6))

    def test_shared_sequencer_not_reset_by_server(self):
        sequencer = HeaderSequencer(group=0)
        code = cauchy_code(4)
        enc = code.encode(np.zeros((4, 2), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=2, sequencer=sequencer)
        list(server.packets(3))
        server.reset()
        assert sequencer.serial == 3  # owner resets it, not the server
        assert next(server.packets(1)).header.serial == 3

    def test_serial_wraparound(self):
        sequencer = HeaderSequencer(group=0,
                                    start_serial=SERIAL_MODULUS - 2)
        serials = [sequencer.next_header(0).serial for _ in range(4)]
        assert serials == [SERIAL_MODULUS - 2, SERIAL_MODULUS - 1, 0, 1]

    def test_start_serial_range_checked(self):
        with pytest.raises(ProtocolError):
            HeaderSequencer(start_serial=SERIAL_MODULUS)
        with pytest.raises(ProtocolError):
            HeaderSequencer(group=SERIAL_MODULUS)


class TestRatelessIdRange:
    def _server(self, **kwargs):
        code = LTCode(8, seed=0)
        src = np.zeros((8, 4), dtype=np.uint8)
        return RatelessServer(code, src, **kwargs)

    def test_exhaustion_fails_fast_with_clear_error(self):
        """Regression: droplet ids used to walk straight past the uint32
        header ceiling and die inside PacketHeader."""
        server = self._server(start=100, id_range=3)
        assert [p.index for p in server.packets(3)] == [100, 101, 102]
        with pytest.raises(ProtocolError, match="droplet id range exhausted"):
            next(server.packets(1))

    def test_header_ceiling_fails_before_overflow(self):
        server = self._server(start=SERIAL_MODULUS - 2)
        assert server.id_range == 2
        packets = list(server.packets(2))
        assert [p.index for p in packets] == [SERIAL_MODULUS - 2,
                                              SERIAL_MODULUS - 1]
        with pytest.raises(ProtocolError):
            next(server.packets(1))

    def test_range_overflowing_uint32_rejected_at_construction(self):
        with pytest.raises(ParameterError):
            self._server(start=SERIAL_MODULUS - 2, id_range=3)
        with pytest.raises(ParameterError):
            self._server(start=SERIAL_MODULUS)
        with pytest.raises(ParameterError):
            self._server(id_range=0)

    def test_wrap_cycles_back_to_start(self):
        server = self._server(start=50, id_range=4, wrap=True)
        ids = [p.index for p in server.packets(10)]
        assert ids == [50, 51, 52, 53] * 2 + [50, 51]
        assert server.ids_remaining == 4  # a wrapping server never runs dry

    def test_index_stream_respects_range(self):
        server = self._server(start=10, id_range=5)
        assert server.index_stream(5).tolist() == [10, 11, 12, 13, 14]
        with pytest.raises(ProtocolError):
            server.index_stream(6)
        wrapping = self._server(start=10, id_range=5, wrap=True)
        assert wrapping.index_stream(7).tolist() == [10, 11, 12, 13, 14,
                                                     10, 11]

    def test_ids_remaining_counts_down(self):
        server = self._server(start=0, id_range=10)
        assert server.ids_remaining == 10
        list(server.packets(4))
        assert server.ids_remaining == 6
        server.reset()
        assert server.ids_remaining == 10


class TestReceptionStats:
    def test_identity(self):
        stats = ReceptionStats(100, 110, 120)
        assert stats.efficiency == pytest.approx(100 / 120)
        assert stats.coding_efficiency == pytest.approx(100 / 110)
        assert stats.distinctness_efficiency == pytest.approx(110 / 120)
        assert stats.efficiency == pytest.approx(
            stats.coding_efficiency * stats.distinctness_efficiency)
        assert stats.duplicates == 10
        assert stats.reception_overhead == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ReceptionStats(0, 1, 1)
        with pytest.raises(ParameterError):
            ReceptionStats(10, 5, 4)

    @given(k=st.integers(1, 1000), distinct=st.integers(1, 2000),
           extra=st.integers(0, 500))
    @settings(max_examples=60)
    def test_identity_property(self, k, distinct, extra):
        stats = ReceptionStats(k, distinct, distinct + extra)
        assert stats.efficiency == pytest.approx(
            stats.coding_efficiency * stats.distinctness_efficiency)

    def test_impossible_counters_rejected(self):
        with pytest.raises(ParameterError):
            ReceptionStats(10, 0, 5)
