"""Shared helpers for the backend differential tests.

The vectorized and reference backends must be *observationally
identical*: same spec + seed + loss realisation in, byte-identical
packets and recoveries out.  These helpers run one complete
encode -> lossy channel -> incremental decode round trip under a chosen
backend and capture everything an outside observer could see, so the
tests reduce to ``run_roundtrip("reference", ...) ==
run_roundtrip("vectorized", ...)``.

The loss realisation is drawn from its own rng, outside the backend
under test, so both backends face exactly the same erasures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.codes.backend import use_backend
from repro.codes.registry import REGISTRY, build_code, incremental_decoder

#: seed-mixing constant so the loss stream never collides with the
#: source-data stream derived from the same test seed.
_LOSS_SALT = 0x10555EED


@dataclass
class RoundTrip:
    """Everything observable about one encode/loss/decode run."""

    #: every packet the encoder produced, concatenated.
    encoded: bytes
    #: arrival positions (into the survivor stream) the decoder consumed.
    packets_fed: int
    #: whether the decoder completed on the survivors.
    complete: bool
    #: reconstructed source bytes, or None when incomplete.
    recovered: Optional[bytes]


def make_source(k: int, payload_size: int, seed: int) -> np.ndarray:
    """Deterministic random ``(k, P)`` uint8 source block."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, payload_size), dtype=np.uint8)


def loss_realisation(count: int, loss: float, seed: int) -> np.ndarray:
    """A fixed delivery mask over ``count`` emissions (True = delivered)."""
    rng = np.random.default_rng(seed ^ _LOSS_SALT)
    return rng.random(count) >= loss


def run_roundtrip(backend: str, spec: str, k: int, payload_size: int,
                  seed: int, loss: float = 0.3,
                  emissions: Optional[int] = None,
                  batch_size: Optional[int] = None) -> RoundTrip:
    """One full round trip under ``backend``; see :class:`RoundTrip`.

    Fixed-rate families emit their whole ``(n, P)`` encoding; rateless
    families mint ``emissions`` droplets (default ``3 * k``).  Survivors
    of the shared loss realisation feed the family's incremental decoder
    one packet at a time until it reports completion — or, with a
    ``batch_size``, through ``add_packets`` in chunks of that size (the
    batched intake path).  A batched run consumes whole chunks, so its
    ``packets_fed`` may overshoot the sequential completion point by up
    to ``batch_size - 1``; recovered bytes are identical either way.
    """
    source = make_source(k, payload_size, seed)
    rateless = REGISTRY.is_rateless(spec)
    if emissions is None:
        emissions = 3 * k if rateless else None
    with use_backend(backend):
        code = build_code(spec, k, seed=seed)
        if rateless:
            encoded = code.encode(source, emissions)
        else:
            encoded = code.encode(source)
        mask = loss_realisation(encoded.shape[0], loss, seed)
        decoder = incremental_decoder(code, payload_size=payload_size)
        fed = 0
        survivors = np.nonzero(mask)[0]
        if batch_size is None:
            for index in survivors:
                fed += 1
                # add_packet's return value means "was new" for some
                # decoders; is_complete is the portable completion signal.
                decoder.add_packet(int(index), encoded[index])
                if decoder.is_complete:
                    break
        else:
            for start in range(0, survivors.size, batch_size):
                chunk = survivors[start:start + batch_size]
                fed += int(chunk.size)
                decoder.add_packets(chunk.tolist(), encoded[chunk])
                if decoder.is_complete:
                    break
        complete = bool(decoder.is_complete)
        recovered = decoder.source_data().tobytes() if complete else None
    return RoundTrip(encoded=encoded.tobytes(), packets_fed=fed,
                     complete=complete, recovered=recovered)


def assert_backends_identical(spec: str, k: int, payload_size: int,
                              seed: int, loss: float = 0.3,
                              emissions: Optional[int] = None) -> RoundTrip:
    """Run both backends and assert observational identity.

    Returns the reference run so callers can make further assertions
    (e.g. that the recovery actually equals the source).
    """
    reference = run_roundtrip("reference", spec, k, payload_size, seed,
                              loss=loss, emissions=emissions)
    vectorized = run_roundtrip("vectorized", spec, k, payload_size, seed,
                               loss=loss, emissions=emissions)
    assert vectorized.encoded == reference.encoded, \
        f"{spec} k={k} P={payload_size} seed={seed}: encoded bytes differ"
    assert vectorized.complete == reference.complete, \
        f"{spec} k={k} P={payload_size} seed={seed}: decode outcome differs"
    assert vectorized.packets_fed == reference.packets_fed, \
        f"{spec} k={k} P={payload_size} seed={seed}: completion point differs"
    assert vectorized.recovered == reference.recovered, \
        f"{spec} k={k} P={payload_size} seed={seed}: recovered bytes differ"
    return reference


def assert_batched_identical(spec: str, k: int, payload_size: int,
                             seed: int, loss: float = 0.3,
                             batch_sizes: tuple = (1, 3, 17, 256),
                             emissions: Optional[int] = None) -> RoundTrip:
    """Batched intake recovers the exact bytes of one-at-a-time feeding.

    Runs the per-packet reference round trip once, then replays the
    same survivor stream through ``add_packets`` under both backends
    for every batch size: completion outcome and recovered bytes must
    match, and a batch can only overshoot the sequential completion
    point by the slack inside its final chunk.
    """
    sequential = run_roundtrip("reference", spec, k, payload_size, seed,
                               loss=loss, emissions=emissions)
    for backend in ("reference", "vectorized"):
        for batch_size in batch_sizes:
            batched = run_roundtrip(backend, spec, k, payload_size, seed,
                                    loss=loss, emissions=emissions,
                                    batch_size=batch_size)
            label = (f"{spec} k={k} seed={seed} backend={backend} "
                     f"batch={batch_size}")
            assert batched.complete == sequential.complete, \
                f"{label}: decode outcome differs from sequential"
            assert batched.recovered == sequential.recovered, \
                f"{label}: recovered bytes differ from sequential"
            if sequential.complete:
                slack = batch_size - 1
                assert (sequential.packets_fed <= batched.packets_fed
                        <= sequential.packets_fed + slack), \
                    f"{label}: completion point outside chunk slack"
    return sequential


def raptor_encode_pair(backend: str, k: int, payload_size: int,
                       seed: int, **params: float):
    """Raptor intermediates via the cached solve plan and the pre-solve.

    Builds one geometry (through the process-wide cache, so the test
    exercises the exact objects production encoders receive) and runs
    the same source block through both encode paths under ``backend``:
    the recorded-plan replay and the retired per-block peeling
    pre-solve, which stays in the tree precisely to serve as this
    oracle.  Returns ``(plan_bytes, presolve_bytes)``.
    """
    from repro.codes.raptor.cache import cached_raptor_assets
    from repro.codes.raptor.encoder import RaptorEncoder

    source = make_source(k, payload_size, seed)
    with use_backend(backend):
        assets = cached_raptor_assets(k, seed=seed, **params)
        fast = RaptorEncoder(assets.geometry, source,
                             plan=assets.encode_plan())
        slow = RaptorEncoder(assets.geometry, source)
    return fast.intermediates.tobytes(), slow.intermediates.tobytes()
