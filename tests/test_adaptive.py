"""The adaptive control plane: feedback frames, policy, closed loops.

Covers the receiver→sender feedback wire format (property-tested round
trips), serial-gap loss estimation, the :class:`AdaptivePolicy` levers
(rate steps down on clean channels and up under fades), the live
schedule machinery (``weighted_slots`` / ``TransferServer.reweight`` /
``TokenBucket.set_rate``), the swarm simulator's vectorized closed
loop, and the UDP acceptance run where an adaptive sender finishes a
bursty transfer with fewer emissions than its open-loop provisioning.
"""

import dataclasses
import json
import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.codes.backend import is_vectorized
from repro.errors import ParameterError, ProtocolError
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.net.transport import (
    MemoryTransport,
    TokenBucket,
    UdpSubscription,
    UdpTransport,
)
from repro.protocol import (
    AdaptivePolicy,
    FeedbackReport,
    LossEstimator,
    report_from_client,
)
from repro.protocol.feedback import MAX_LAGGING_BLOCKS
from repro.transfer import BlockPlan, ObjectCodec, TransferClient, TransferServer
from repro.transfer.schedule import weighted_slots


def _random_bytes(n, seed):
    return bytes(np.random.default_rng(seed).integers(0, 256, n,
                                                      dtype=np.uint8))


def _udp_available():
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


needs_udp = pytest.mark.skipif(
    not _udp_available(), reason="UDP loopback sockets unavailable")


# -- the wire frame ------------------------------------------------------------


reports = st.builds(
    FeedbackReport,
    receiver_id=st.integers(0, 0xFFFFFFFF),
    loss=st.floats(0.0, 1.0),
    progress=st.floats(0.0, 1.0),
    packets_used=st.integers(0, 0xFFFFFFFF),
    blocks_total=st.integers(1, 0xFFFF),
    complete=st.booleans(),
    receivers=st.integers(1, 0xFFFF),
    lagging=st.lists(
        st.tuples(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF)),
        max_size=MAX_LAGGING_BLOCKS).map(tuple),
)


class TestFeedbackFrame:
    @settings(max_examples=200, deadline=None)
    @given(report=reports)
    def test_round_trip(self, report):
        back = FeedbackReport.decode(report.encode())
        assert back.receiver_id == report.receiver_id
        assert back.packets_used == report.packets_used
        assert back.blocks_total == report.blocks_total
        assert back.complete == report.complete
        assert back.receivers == report.receivers
        assert back.lagging == report.lagging
        # fractions are quantised onto u16 — exact to half a step.
        assert abs(back.loss - report.loss) <= 0.5 / 0xFFFF
        assert abs(back.progress - report.progress) <= 0.5 / 0xFFFF

    @settings(max_examples=100, deadline=None)
    @given(report=reports, cut=st.integers(1, 12))
    def test_truncation_always_rejected(self, report, cut):
        body = report.encode()
        with pytest.raises(ProtocolError):
            FeedbackReport.decode(body[:-min(cut, len(body))])

    def test_too_many_lagging_blocks_rejected(self):
        pairs = tuple((b, 1) for b in range(MAX_LAGGING_BLOCKS + 1))
        with pytest.raises(ProtocolError, match="lagging"):
            FeedbackReport(receiver_id=1, lagging=pairs)

    def test_wrong_version_rejected(self):
        body = FeedbackReport(receiver_id=1).encode()
        with pytest.raises(ProtocolError, match="version"):
            FeedbackReport.decode(b"\x02" + body[1:])

    def test_trailing_garbage_rejected(self):
        body = FeedbackReport(receiver_id=1).encode()
        with pytest.raises(ProtocolError, match="trailing"):
            FeedbackReport.decode(body + b"\x00\x01")

    def test_report_from_client_names_worst_blocks_first(self):
        class FakeClient:
            progress = 0.5
            is_complete = False
            num_blocks = 4
            incomplete_blocks = [0, 2, 3]

            def block_min_additional(self, block):
                return {0: 3, 2: 9, 3: 1}[block]

        report = report_from_client(FakeClient(), receiver_id=7, loss=0.2)
        assert report.lagging == ((2, 9), (0, 3), (3, 1))
        assert report.blocks_total == 4
        assert not report.complete


# -- serial-gap loss estimation ------------------------------------------------


class TestLossEstimator:
    def _stream(self, loss, n=20_000, seed=3):
        rng = np.random.default_rng(seed)
        serials = np.arange(n)[rng.random(n) >= loss]
        return serials

    @pytest.mark.parametrize("loss", [0.05, 0.2, 0.4])
    def test_estimate_tracks_true_rate(self, loss):
        serials = self._stream(loss)
        est = LossEstimator()
        est.observe(serials.tolist())
        assert abs(est.loss - loss) < 0.05

    def test_chunking_does_not_bias(self):
        """Ratio-of-sums: tiny per-call batches and one big batch of
        the same stream must agree (per-batch ratio averaging fails
        this badly)."""
        serials = self._stream(0.2)
        # negligible forgetting, so the only difference is batching
        small, big = LossEstimator(alpha=1e-7), LossEstimator(alpha=1e-7)
        big.observe(serials.tolist())
        for start in range(0, len(serials), 7):
            small.observe(serials[start:start + 7].tolist())
        assert abs(small.loss - big.loss) < 0.01

    def test_reordered_stragglers_ignored(self):
        est = LossEstimator()
        est.observe([0, 1, 2, 3, 9])
        before = est.loss
        est.observe([4, 5])  # arrived late, span already counted
        assert est.loss == before

    def test_empty_batch_is_a_noop(self):
        est = LossEstimator()
        assert est.observe([]) == 0.0

    def test_alpha_validated(self):
        with pytest.raises(ProtocolError):
            LossEstimator(alpha=1.5)


# -- the policy ----------------------------------------------------------------


class TestAdaptivePolicy:
    def _feed(self, policy, losses, now=0.0, complete=False):
        for i, loss in enumerate(losses):
            policy.observe(FeedbackReport(receiver_id=i, loss=loss,
                                          complete=complete), now=now)

    def test_rate_steps_down_on_clean_channels(self):
        """Convergence: a clean population walks the scale down to the
        clamp (the sender stops over-provisioning)."""
        policy = AdaptivePolicy(nominal_loss=0.2, rate_alpha=0.5)
        self._feed(policy, [0.0, 0.01, 0.0])
        scales = [policy.rate_scale() for _ in range(12)]
        assert scales[0] < 1.0
        assert scales[-1] == pytest.approx(0.8, abs=0.02)
        assert all(b <= a + 1e-9 for a, b in zip(scales, scales[1:]))

    def test_rate_steps_up_under_fades(self):
        policy = AdaptivePolicy(nominal_loss=0.1, rate_alpha=0.5)
        self._feed(policy, [0.4, 0.45, 0.5], now=0.0)
        scales = [policy.rate_scale(now=0.0) for _ in range(12)]
        assert scales[-1] > scales[0] > 1.0
        # converges to (1 - nominal) / (1 - quantile loss)
        assert scales[-1] == pytest.approx(0.9 / 0.5, rel=0.05)

    def test_rate_scale_clamped(self):
        policy = AdaptivePolicy(nominal_loss=0.0, max_scale=2.0)
        self._feed(policy, [0.95])
        for _ in range(20):
            scale = policy.rate_scale()
        assert scale <= 2.0

    def test_stale_reports_fade_out(self):
        policy = AdaptivePolicy(stale_after=10.0)
        self._feed(policy, [0.5], now=0.0)
        assert policy.loss_estimate(now=5.0) == pytest.approx(0.5)
        assert policy.loss_estimate(now=20.0) == 0.0

    def test_quantile_provisions_for_stragglers(self):
        policy = AdaptivePolicy(quantile=0.95)
        self._feed(policy, [0.05] * 9 + [0.5])
        assert policy.loss_estimate() == pytest.approx(0.5)
        median = AdaptivePolicy(quantile=0.5)
        self._feed(median, [0.05] * 9 + [0.5])
        assert median.loss_estimate() == pytest.approx(0.05)

    def test_receiver_count_hints_weight_the_quantile(self):
        policy = AdaptivePolicy(quantile=0.5)
        policy.observe(FeedbackReport(receiver_id=0, loss=0.01,
                                      receivers=1000))
        policy.observe(FeedbackReport(receiver_id=1, loss=0.5))
        assert policy.loss_estimate() == pytest.approx(0.01)

    def test_complete_receivers_leave_the_aggregate(self):
        policy = AdaptivePolicy()
        self._feed(policy, [0.4], complete=True)
        assert policy.loss_estimate() == 0.0
        decision = policy.decide([4, 4])
        assert decision.all_complete

    def test_block_shares_blend(self):
        policy = AdaptivePolicy(schedule_gain=0.5)
        base = policy.block_shares([0.0, 0.0], [4, 4])
        assert base == [0.5, 0.5]
        chased = policy.block_shares([0.0, 10.0], [4, 4])
        assert chased == pytest.approx([0.25, 0.75])
        assert sum(chased) == pytest.approx(1.0)

    def test_schedule_weights_floor(self):
        policy = AdaptivePolicy(schedule_gain=1.0)
        policy.observe(FeedbackReport(receiver_id=0, loss=0.1,
                                      blocks_total=2, lagging=((1, 50),)))
        weights = policy.schedule_weights([4, 4])
        assert weights[0] == 0.05  # starved block keeps a floor share
        assert weights[1] > 1.0

    def test_recommend_spec_retunes_rateless_only(self):
        policy = AdaptivePolicy()
        self._feed(policy, [0.3, 0.3, 0.3])
        lt = policy.recommend_spec("lt:c=0.03,delta=0.5")
        params = dict(p.split("=") for p in lt.split(":")[1].split(","))
        assert float(params["c"]) > 0.03
        assert float(params["delta"]) < 0.5
        raptor = policy.recommend_spec("raptor:eps=0.1")
        assert float(raptor.split("eps=")[1]) > 0.1
        assert policy.recommend_spec("tornado-a") == "tornado-a"

    def test_parameters_validated(self):
        with pytest.raises(ParameterError):
            AdaptivePolicy(quantile=1.5)
        with pytest.raises(ParameterError):
            AdaptivePolicy(min_scale=0.0)
        with pytest.raises(ParameterError):
            AdaptivePolicy(schedule_gain=2.0)


# -- live schedule machinery ---------------------------------------------------


class TestWeightedSchedule:
    def test_all_ones_is_the_proportional_stripe(self):
        ks = [3, 5, 2]
        slots = weighted_slots(ks, [1.0, 1.0, 1.0])
        window = [next(slots) for _ in range(1000)]
        counts = np.bincount(window, minlength=3)
        for b, k in enumerate(ks):
            assert counts[b] == pytest.approx(1000 * k / sum(ks), abs=2)

    def test_weights_shift_the_mix(self):
        slots = weighted_slots([4, 4], [1.0, 3.0])
        window = [next(slots) for _ in range(800)]
        counts = np.bincount(window, minlength=2)
        assert counts[1] == pytest.approx(600, abs=4)

    def test_validation(self):
        with pytest.raises(ParameterError):
            weighted_slots([4, 4], [1.0])
        with pytest.raises(ParameterError):
            weighted_slots([4, 4], [1.0, 0.0])

    def test_server_reweight_mid_stream_stays_decodable(self):
        data = _random_bytes(40_000, seed=5)
        plan = BlockPlan(len(data), 512, 16)
        codec = ObjectCodec(plan, code="lt", seed=9)
        server = TransferServer(codec, data)
        client = TransferClient(codec)
        stream = server.packets()
        for _ in range(plan.total_packets // 2):
            client.receive(next(stream))
        server.reweight([2.0 if b % 2 else 0.5
                         for b in range(plan.num_blocks)])
        window = []
        while not client.is_complete:
            packet = next(stream)
            window.append(packet.block)
            client.receive(packet)
        assert client.object_data() == data
        counts = np.bincount(window, minlength=plan.num_blocks)
        assert counts[1] > counts[0]  # the reweight actually took

    def test_server_reweight_none_restores_configured_schedule(self):
        data = _random_bytes(8_000, seed=6)
        codec = ObjectCodec(BlockPlan(len(data), 512, 8), code="lt", seed=2)
        server = TransferServer(codec, data)
        server.reweight([9.0, 1.0])
        server.reweight(None)
        window = [next(server.packets()).block for _ in range(16)]
        assert sorted(set(window)) == [0, 1]
        assert np.bincount(window).tolist() == [8, 8]


class TestTokenBucketSetRate:
    def test_rate_change_takes_effect(self):
        bucket = TokenBucket(rate=100.0)
        bucket.set_rate(200.0)
        assert bucket.rate == 200.0

    def test_capacity_never_shrinks(self):
        bucket = TokenBucket(rate=10_000.0)
        cap = bucket.capacity
        bucket.set_rate(10.0)
        assert bucket.capacity >= cap

    def test_invalid_rate_rejected(self):
        bucket = TokenBucket(rate=100.0)
        with pytest.raises(ParameterError):
            bucket.set_rate(0.0)


# -- memory transport closed loop ----------------------------------------------


class TestMemoryAdaptive:
    def _session(self, seed=11):
        data = _random_bytes(40_000, seed=seed)
        return data, api.SenderSession(data, code="lt", seed=seed,
                                       block_size=16_384)

    def test_adaptive_serve_hears_shadow_reports(self):
        data, session = self._session()
        transport = MemoryTransport(loss=0.2, seed=7)
        subs = [transport.subscribe() for _ in range(3)]
        policy = AdaptivePolicy()
        seen = []
        report = session.serve(transport, policy=policy,
                               feedback=seen.append, report_every=64)
        assert report.emitted > 0
        assert policy.reports_seen >= len(seen) > 0
        assert {r.receiver_id for r in seen} == {0, 1, 2}
        for sub in subs:
            receiver = sub.receive()
            assert receiver.data() == data

    def test_reporting_receiver_enqueues_wire_frames(self):
        data, session = self._session(seed=13)
        transport = MemoryTransport(loss=0.1, seed=5)
        sub = transport.subscribe()
        session.serve(transport)
        receiver = api.ReceiverSession.from_subscription(
            sub, report=32, receiver_id=42)
        sub.feed(receiver)
        assert receiver.data() == data
        reports = transport.drain_feedback()
        assert reports, "reporting receiver never sent a frame"
        assert reports[-1].complete
        assert reports[-1].receiver_id == 42
        assert all(r.receiver_id == 42 for r in reports)

    def test_final_complete_report_sent_exactly_once(self):
        data, session = self._session(seed=17)
        transport = MemoryTransport(seed=3)
        sub = transport.subscribe()
        session.serve(transport)
        receiver = api.ReceiverSession.from_subscription(sub, report=True)
        sub.feed(receiver)
        complete = [r for r in transport.drain_feedback() if r.complete]
        assert len(complete) == 1
        assert receiver.maybe_report() is None  # already finalised

    def test_receiver_loss_estimate_rides_serials(self):
        data, session = self._session(seed=19)
        transport = MemoryTransport(loss=0.3, seed=29)
        sub = transport.subscribe()
        session.serve(transport)
        receiver = api.ReceiverSession.from_subscription(sub, report=True)
        sub.feed(receiver)
        assert receiver.is_complete
        assert abs(receiver.loss_estimate - 0.3) < 0.12


# -- the swarm closed loop -----------------------------------------------------


def _gilbert_scenario(code="lt:c=0.03,delta=0.5", receivers=600):
    from repro.sim.swarm import Scenario

    return Scenario(
        name="closed-loop-test",
        code=code,
        file_size=1 << 20,
        packet_size=1024,
        block_packets=128,
        seed=99,
        max_sweeps=40,
        threshold_trials=16,
        groups=(
            {"name": "steady", "count": receivers * 2 // 3,
             "loss": {"kind": "gilbert", "rate": [0.05, 0.15],
                      "burst": [4.0, 12.0]}},
            {"name": "fading", "count": receivers // 3,
             "loss": {"kind": "gilbert", "rate": [0.25, 0.4],
                      "burst": [12.0, 32.0]}},
        ),
    )


class TestSwarmClosedLoop:
    def test_closed_loop_beats_open_loop_tail(self):
        """The acceptance mechanism: deficit-driven slot reallocation
        cuts the p99 overhead on a bursty Gilbert population (rateless
        blocks have genuinely heterogeneous decode thresholds, so
        lagging blocks are population-wide and the schedule lever has
        something to chase)."""
        from repro.sim.swarm import SwarmSimulator

        scenario = _gilbert_scenario()
        open_loop = SwarmSimulator(scenario).run()
        closed = SwarmSimulator(scenario).run(policy=AdaptivePolicy())
        assert closed.completion_rate == 1.0
        assert (closed.overhead_percentile(99)
                < open_loop.overhead_percentile(99))
        assert (closed.overhead_percentile(50)
                <= open_loop.overhead_percentile(50) * 1.05)

    def test_closed_loop_deterministic(self):
        from repro.sim.swarm import SwarmSimulator

        scenario = _gilbert_scenario(receivers=200)
        a = SwarmSimulator(scenario).run(policy=AdaptivePolicy())
        b = SwarmSimulator(scenario).run(policy=AdaptivePolicy())
        np.testing.assert_array_equal(a.overhead, b.overhead)
        np.testing.assert_array_equal(a.completion_slot, b.completion_slot)

    def test_closed_loop_rejects_workers_and_spot_check(self):
        from repro.sim.swarm import SwarmSimulator

        scenario = _gilbert_scenario(receivers=60)
        with pytest.raises(ParameterError, match="single-process"):
            SwarmSimulator(scenario).run(workers=2, policy=AdaptivePolicy())
        with pytest.raises(ParameterError, match="spot_check"):
            SwarmSimulator(scenario).run(spot_check=5,
                                         policy=AdaptivePolicy())

    def test_degenerate_thresholds_stay_near_proportional(self):
        """With identical per-block thresholds (tornado-a decodes at
        exactly k here) the deficit aggregate is symmetric — the closed
        loop must not hurt the population it cannot help."""
        from repro.sim.swarm import SwarmSimulator

        scenario = _gilbert_scenario(code="tornado-a", receivers=300)
        open_loop = SwarmSimulator(scenario).run()
        closed = SwarmSimulator(scenario).run(policy=AdaptivePolicy())
        assert closed.completion_rate == 1.0
        assert (closed.overhead_percentile(99)
                <= open_loop.overhead_percentile(99) * 1.1)


class TestLossPresets:
    def test_preset_expands_to_gilbert_spec(self):
        from repro.sim.swarm import LOSS_PRESETS, LossSpec

        for name in LOSS_PRESETS:
            spec = LossSpec.preset(name)
            assert spec.kind == "gilbert"

    def test_unknown_preset_rejected(self):
        from repro.sim.swarm import LossSpec

        with pytest.raises(ParameterError, match="preset"):
            LossSpec.preset("lte-underground")

    def test_scenario_groups_accept_preset_strings(self):
        from repro.sim.swarm import Scenario

        scenario = Scenario(
            name="preset-str", groups=(
                {"name": "ped", "count": 10, "loss": "gprs-pedestrian"},))
        assert scenario.groups[0].loss.kind == "gilbert"
        # round-trips through JSON in expanded (self-contained) form
        again = Scenario.from_json(scenario.to_json())
        assert again.groups[0].loss == scenario.groups[0].loss

    def test_with_loss_overrides_every_group(self):
        scenario = _gilbert_scenario(receivers=30)
        swapped = scenario.with_loss("wireless-testbed")
        assert all(g.loss == swapped.groups[0].loss
                   for g in swapped.groups)
        assert scenario.groups[0].loss != swapped.groups[0].loss

    def test_committed_bursty_wireless_scenario_loads(self):
        from repro.sim.swarm import Scenario, SwarmSimulator

        scenario = Scenario.load(
            "examples/scenarios/bursty_wireless.json").scaled(200)
        result = SwarmSimulator(scenario).run()
        assert result.completion_rate == 1.0


class TestSwarmCli:
    def test_adaptive_and_preset_flags(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "summary.json"
        code = main(["swarm", "run", "examples/scenarios/bursty_wireless.json",
                     "--receivers", "200", "--adaptive",
                     "--loss-preset", "gprs-vehicular",
                     "--json", str(out)])
        assert code == 0
        summary = json.loads(out.read_text())
        assert summary["completion_rate"] == 1.0

    def test_unknown_preset_fails_loudly(self, capsys):
        from repro.cli import main

        code = main(["swarm", "run",
                     "examples/scenarios/bursty_wireless.json",
                     "--receivers", "50", "--loss-preset", "marsnet"])
        assert code == 2
        assert "preset" in capsys.readouterr().err

    def test_serve_adaptive_rejected_on_file_transport(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        blob = tmp_path / "f.bin"
        blob.write_bytes(_random_bytes(2_000, seed=1))
        code = main(["serve", str(blob), str(tmp_path / "out"),
                     "--transport", "file", "--adaptive"])
        assert code == 2
        assert "--adaptive" in capsys.readouterr().err


# -- UDP closed loop -----------------------------------------------------------


@needs_udp
class TestUdpAdaptive:
    def _run(self, data, *, policy=None, report=None, count=None,
             loss_model=None, pace=None, seed=71, timeout=30.0):
        session = api.SenderSession(data, code="lt", seed=seed,
                                    block_size=128 * 1024,
                                    file_name="blob")
        sub = UdpSubscription("127.0.0.1:0", timeout=timeout)
        transport = UdpTransport([sub.address], pace=pace,
                                 loss_model=loss_model, seed=seed + 1,
                                 manifest_interval=32)
        holder = {}
        errors = []

        def drink():
            try:
                receiver = api.ReceiverSession.from_subscription(
                    sub, timeout=timeout, report=report)
                holder["receiver"] = receiver
                sub.feed(receiver, timeout=timeout)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=drink)
        thread.start()
        try:
            if policy is not None:
                serve_report = session.serve(transport, policy=policy)
            else:
                # open loop: no return path, so the whole provisioned
                # budget goes out regardless of receiver state.
                serve_report = session.serve(transport, count=count)
        finally:
            thread.join(timeout=timeout)
            sub.close()
        if errors:
            raise errors[0]
        return holder["receiver"], serve_report, session

    @pytest.mark.skipif(
        not is_vectorized(),
        reason="wall-clock economy claim: the scalar reference decoder "
               "cannot drain 1 MiB at pace, so the completion report "
               "lags the sender and the packet-count win is noise")
    def test_adaptive_beats_open_loop_provisioning(self):
        """Acceptance: >= 1 MiB across real UDP loopback at 20% bursty
        (Gilbert-Elliott) loss — the reporting receiver's complete
        frame stops the adaptive sender, while the open-loop sender
        must blindly emit its whole loss-provisioned budget."""
        data = _random_bytes(1_100_000, seed=37)
        bursty = GilbertElliottLoss.from_loss_and_burst(0.2, 8.0)
        policy = AdaptivePolicy(nominal_loss=0.2)
        receiver, adaptive_report, session = self._run(
            data, policy=policy, report=64, pace=25_000,
            loss_model=bursty)
        assert receiver.is_complete
        assert receiver.data() == data
        assert adaptive_report.feedback_frames > 0
        # Open loop: no return path, so the sender provisions for the
        # nominal loss plus rateless margin and emits all of it.
        budget = int(session.total_k * 1.6 / (1.0 - 0.2))
        open_receiver, open_report, _ = self._run(
            data, count=budget, loss_model=bursty, seed=71)
        assert open_receiver.is_complete
        assert open_receiver.data() == data
        assert adaptive_report.emitted < open_report.emitted

    def test_feedback_frames_ride_the_reply_socket(self):
        data = _random_bytes(150_000, seed=41)
        policy = AdaptivePolicy()
        seen = []
        session = api.SenderSession(data, code="lt", seed=43,
                                    block_size=64 * 1024,
                                    file_name="blob")
        sub = UdpSubscription("127.0.0.1:0", timeout=20.0)
        transport = UdpTransport([sub.address], pace=20_000,
                                 manifest_interval=32)
        holder = {}
        errors = []

        def drink():
            try:
                receiver = api.ReceiverSession.from_subscription(
                    sub, timeout=20.0, report=32)
                holder["receiver"] = receiver
                sub.feed(receiver, timeout=20.0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=drink)
        thread.start()
        try:
            report = session.serve(transport, policy=policy,
                                   feedback=seen.append)
        finally:
            thread.join(timeout=20.0)
            sub.close()
        assert not errors, errors
        assert holder["receiver"].data() == data
        assert sub.feedback_sent > 0
        assert report.feedback_frames > 0
        assert seen and seen[-1].complete
        assert policy.reports_seen == report.feedback_frames
