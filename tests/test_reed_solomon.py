"""Reed-Solomon erasure codes: MDS property, decode paths, field choice."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.reed_solomon import (
    ReedSolomonCode,
    cauchy_code,
    default_field_for,
    vandermonde_code,
)
from repro.errors import DecodeFailure, ParameterError
from repro.gf import GF256, GF65536

CONSTRUCTIONS = ["cauchy", "vandermonde"]


def make_source(k, payload, dtype, seed=0):
    rng = np.random.default_rng(seed)
    info = np.iinfo(dtype)
    return rng.integers(0, int(info.max) + 1, size=(k, payload)).astype(dtype)


@pytest.mark.parametrize("construction", CONSTRUCTIONS)
class TestRoundtrip:
    def test_systematic_prefix(self, construction):
        code = ReedSolomonCode(6, 12, construction)
        src = make_source(6, 16, code.field.dtype)
        enc = code.encode(src)
        assert np.array_equal(enc[:6], src)

    def test_decode_from_any_k(self, construction):
        code = ReedSolomonCode(8, 16, construction)
        src = make_source(8, 24, code.field.dtype, seed=1)
        enc = code.encode(src)
        rng = np.random.default_rng(2)
        for _ in range(10):
            keep = rng.choice(code.n, size=8, replace=False)
            rec = code.decode({int(i): enc[i] for i in keep})
            assert np.array_equal(rec, src)

    def test_decode_all_source_is_copy(self, construction):
        code = ReedSolomonCode(5, 10, construction)
        src = make_source(5, 8, code.field.dtype, seed=3)
        enc = code.encode(src)
        rec = code.decode({i: enc[i] for i in range(5)})
        assert np.array_equal(rec, src)

    def test_decode_all_redundant(self, construction):
        code = ReedSolomonCode(5, 10, construction)
        src = make_source(5, 8, code.field.dtype, seed=4)
        enc = code.encode(src)
        rec = code.decode({i + 5: enc[i + 5] for i in range(5)})
        assert np.array_equal(rec, src)

    def test_insufficient_packets_fail(self, construction):
        code = ReedSolomonCode(5, 10, construction)
        src = make_source(5, 8, code.field.dtype, seed=5)
        enc = code.encode(src)
        with pytest.raises(DecodeFailure):
            code.decode({i: enc[i] for i in range(4)})


@given(k=st.integers(min_value=1, max_value=20),
       extra=st.integers(min_value=1, max_value=10))
@settings(max_examples=20, deadline=None)
def test_cauchy_roundtrip_property(k, extra):
    code = cauchy_code(k, k + extra)
    src = make_source(k, 4, code.field.dtype, seed=k)
    enc = code.encode(src)
    rng = np.random.default_rng(k * 31 + extra)
    keep = rng.choice(code.n, size=k, replace=False)
    assert np.array_equal(code.decode({int(i): enc[i] for i in keep}), src)


def test_is_decodable_counts_distinct():
    code = cauchy_code(4)
    assert not code.is_decodable([0, 0, 0, 0, 1])
    assert not code.is_decodable([0, 1, 2])
    assert code.is_decodable([0, 1, 2, 7])
    # out-of-range indices do not count
    assert not code.is_decodable([0, 1, 2, 99])


def test_packets_to_decode_is_kth_distinct():
    code = cauchy_code(4)
    order = [5, 5, 1, 1, 2, 7, 0]
    # distinct arrivals: 5,1,2,7 -> decodable after position 6 (1-based)
    assert code.packets_to_decode(order) == 6


def test_gf65536_large_code_roundtrip():
    code = cauchy_code(300)  # n = 600 > 256 forces GF(2^16)
    assert code.field is GF65536
    src = make_source(300, 8, np.uint16, seed=6)
    enc = code.encode(src)
    rng = np.random.default_rng(7)
    keep = rng.choice(code.n, size=300, replace=False)
    assert np.array_equal(code.decode({int(i): enc[i] for i in keep}), src)


def test_default_field_selection():
    assert default_field_for(256) is GF256
    assert default_field_for(257) is GF65536
    with pytest.raises(ParameterError):
        default_field_for(70000)


def test_bad_parameters():
    with pytest.raises(ParameterError):
        ReedSolomonCode(0, 4)
    with pytest.raises(ParameterError):
        ReedSolomonCode(4, 4)
    with pytest.raises(ParameterError):
        ReedSolomonCode(4, 8, construction="fountain")
    with pytest.raises(ParameterError):
        ReedSolomonCode(200, 400, field=GF256)


def test_stretch_and_redundancy():
    code = vandermonde_code(10)
    assert code.n == 20
    assert code.redundancy == 10
    assert code.stretch_factor == pytest.approx(2.0)
