"""Congestion control, layered server/receiver, session integration."""

import numpy as np
import pytest

from repro.codes.registry import build_code
from repro.codes.tornado.presets import tornado_a
from repro.errors import ParameterError
from repro.net.loss import BernoulliLoss
from repro.protocol.congestion import CongestionPolicy, SubscriptionController
from repro.protocol.layering import LayerConfig
from repro.protocol.receiver import LayeredReceiver
from repro.protocol.server import LayeredServer
from repro.protocol.session import (
    SessionResult,
    run_session,
    run_single_layer_session,
)


class TestCongestionPolicy:
    def test_sp_interval_inverse_to_bandwidth(self):
        policy = CongestionPolicy(sp_base_interval=16)
        config = LayerConfig(4)
        intervals = [policy.sp_interval(layer, config) for layer in range(4)]
        # Lower layers get SPs at least as often as higher layers.
        assert intervals == sorted(intervals)
        assert intervals[0] < intervals[-1]

    def test_burst_cadence(self):
        policy = CongestionPolicy(burst_interval=4, burst_length=1)
        bursts = [policy.is_burst_round(r) for r in range(8)]
        assert bursts == [True, False, False, False] * 2

    def test_burst_disabled(self):
        policy = CongestionPolicy(burst_interval=100, burst_length=0)
        assert not any(policy.is_burst_round(r) for r in range(200))

    def test_invalid(self):
        with pytest.raises(ParameterError):
            CongestionPolicy(sp_base_interval=0)
        with pytest.raises(ParameterError):
            CongestionPolicy(burst_interval=2, burst_length=2)
        with pytest.raises(ParameterError):
            CongestionPolicy(drop_loss_threshold=0.1,
                             join_loss_threshold=0.2)


class TestSubscriptionController:
    def _controller(self):
        policy = CongestionPolicy(drop_loss_threshold=0.25,
                                  join_loss_threshold=0.05)
        return SubscriptionController(policy=policy, config=LayerConfig(4),
                                      level=1)

    def test_drop_on_heavy_loss(self):
        ctl = self._controller()
        ctl.observe_round(expected=100, received=50, in_burst=False)
        assert ctl.at_sp() == 0
        assert ctl.drops == 1

    def test_join_after_clean_burst(self):
        ctl = self._controller()
        ctl.observe_round(expected=100, received=100, in_burst=True)
        ctl.end_burst()
        assert ctl.at_sp() == 2
        assert ctl.joins == 1

    def test_no_join_without_burst_verdict(self):
        ctl = self._controller()
        ctl.observe_round(expected=100, received=100, in_burst=False)
        assert ctl.at_sp() == 1

    def test_no_join_after_lossy_burst(self):
        ctl = self._controller()
        ctl.observe_round(expected=100, received=80, in_burst=True)
        ctl.end_burst()
        assert ctl.last_burst_ok is False
        # Post-SP loss is below the drop threshold, so level holds.
        assert ctl.at_sp() == 1

    def test_level_bounds(self):
        ctl = self._controller()
        ctl.level = 0
        ctl.observe_round(100, 0, False)
        assert ctl.at_sp() == 0  # cannot drop below 0
        ctl.level = 3
        ctl.observe_round(100, 100, True)
        ctl.end_burst()
        assert ctl.at_sp() == 3  # cannot join above max


class TestLayeredServer:
    def test_round_volume_matches_rates(self):
        code = tornado_a(512, seed=0)
        config = LayerConfig(4)
        policy = CongestionPolicy(burst_interval=100, burst_length=0)
        server = LayeredServer(code, config, policy, seed=1)
        per_layer, burst = server.next_round()
        assert not burst
        for layer, indices in enumerate(per_layer):
            assert indices.size == config.layer_rate(layer) * server.num_blocks

    def test_burst_doubles_volume(self):
        code = tornado_a(512, seed=0)
        config = LayerConfig(4)
        policy = CongestionPolicy(burst_interval=4, burst_length=1)
        server = LayeredServer(code, config, policy, seed=1)
        per_layer, burst = server.next_round()  # round 0 is a burst
        assert burst
        assert per_layer[0].size == 2 * server.num_blocks

    def test_full_level_sees_permutation_per_sweep(self):
        """A top-level subscriber gets every encoding index exactly once
        per full pattern sweep (One Level Property end to end)."""
        code = tornado_a(512, seed=0)  # n=1024, divisible by 8
        config = LayerConfig(4)
        policy = CongestionPolicy(burst_interval=100, burst_length=0)
        server = LayeredServer(code, config, policy, seed=1)
        got = []
        for _ in range(server.rounds_per_sweep):
            per_layer, _ = server.next_round()
            got.extend(np.concatenate(per_layer).tolist())
        assert sorted(got) == list(range(code.n))

    def test_blocks_per_round_granularity(self):
        code = tornado_a(512, seed=0)
        config = LayerConfig(4)
        policy = CongestionPolicy(burst_interval=100, burst_length=0)
        server = LayeredServer(code, config, policy, seed=1,
                               blocks_per_round=16)
        assert server.rounds_per_sweep == server.num_blocks // 16
        per_layer, _ = server.next_round()
        assert per_layer[3].size == 4 * 16

    def test_rateless_sweep_tiles_fresh_ids(self):
        """A rateless code's schedule mints every slot's droplet id
        exactly once per sweep, and never reuses one across sweeps."""
        code = build_code("lt", 512, seed=0)
        config = LayerConfig(4)
        policy = CongestionPolicy(burst_interval=100, burst_length=0)
        server = LayeredServer(code, config, policy, seed=1)
        first_sweep = []
        for _ in range(server.rounds_per_sweep):
            per_layer, _ = server.next_round()
            first_sweep.extend(np.concatenate(per_layer).tolist())
        assert sorted(first_sweep) == list(range(server.schedule_size))
        second_sweep = []
        for _ in range(server.rounds_per_sweep):
            per_layer, _ = server.next_round()
            second_sweep.extend(np.concatenate(per_layer).tolist())
        assert not set(first_sweep) & set(second_sweep)

    def test_rateless_cycle_length_override(self):
        code = build_code("lt", 100, seed=0)
        config = LayerConfig(2)
        policy = CongestionPolicy(burst_interval=100, burst_length=0)
        server = LayeredServer(code, config, policy, cycle_length=64)
        assert server.schedule_size == 64
        with pytest.raises(ParameterError):
            LayeredServer(code, config, policy, cycle_length=0)

    def test_cycle_length_rejected_for_fixed_rate(self):
        code = tornado_a(128, seed=0)
        config = LayerConfig(2)
        policy = CongestionPolicy(burst_interval=100, burst_length=0)
        with pytest.raises(ParameterError, match="rateless"):
            LayeredServer(code, config, policy, cycle_length=64)


class TestLayeredReceiver:
    def _setup(self, capacity, loss):
        code = tornado_a(512, seed=0)
        config = LayerConfig(4)
        policy = CongestionPolicy(burst_interval=4, burst_length=1,
                                  sp_base_interval=8)
        server = LayeredServer(code, config, policy, seed=1,
                               blocks_per_round=16)
        receiver = LayeredReceiver(code, config, policy, capacity,
                                   BernoulliLoss(loss), rng=2)
        return server, receiver

    def test_receiver_completes(self):
        server, receiver = self._setup(capacity=1000, loss=0.1)
        for rnd in range(500):
            per_layer, burst = server.next_round()
            receiver.process_round(rnd, per_layer, burst)
            if receiver.is_complete:
                break
        assert receiver.is_complete
        stats = receiver.stats()
        assert stats.efficiency > 0.5
        assert stats.efficiency == pytest.approx(
            stats.coding_efficiency * stats.distinctness_efficiency)

    def test_congestion_drops_counted(self):
        server, receiver = self._setup(capacity=8, loss=0.0)
        receiver.controller.level = 3
        per_layer, burst = server.next_round()
        receiver.process_round(0, per_layer, burst)
        assert receiver.congestion_drops > 0


class TestSessions:
    def test_single_layer_distinctness_at_low_loss(self):
        code = tornado_a(400, seed=3)
        results = run_single_layer_session(code, [0.05, 0.2], seed=4)
        for r in results:
            assert r.completed
            assert r.distinctness_efficiency == pytest.approx(1.0)

    def test_single_layer_degrades_beyond_half_loss(self):
        code = tornado_a(400, seed=3)
        results = run_single_layer_session(code, [0.65], seed=5)
        assert results[0].completed
        assert results[0].distinctness_efficiency < 0.98

    def test_layered_session_runs_heterogeneous(self):
        code = tornado_a(400, seed=6)
        results = run_session(code, [0.05, 0.15], [8.0, 2.0], seed=7)
        assert all(r.completed for r in results)
        assert all(0 < r.efficiency <= 1 for r in results)

    def test_session_parameter_validation(self):
        code = tornado_a(100, seed=0)
        with pytest.raises(ParameterError):
            run_session(code, [0.1], [1.0, 2.0])

    @pytest.mark.parametrize("spec", ["tornado-a", "lt", "rs"])
    def test_layered_session_over_any_registered_code(self, spec):
        """The scenario unlock: layered multicast over every family."""
        results = run_session(code_spec=spec, k=300,
                              ambient_loss_rates=[0.05, 0.15],
                              capacity_multipliers=[8.0, 2.0], seed=7)
        assert all(r.completed for r in results)
        assert all(0 < r.efficiency <= 1 for r in results)
        assert all(r.code_spec == spec for r in results)

    @pytest.mark.parametrize("spec", ["tornado-a", "lt", "rs"])
    def test_single_layer_session_over_any_registered_code(self, spec):
        results = run_single_layer_session(code_spec=spec, k=300,
                                           loss_rates=[0.2], seed=4)
        assert results[0].completed
        # LT and RS never see a wrap-around duplicate below half loss;
        # the fountain (fresh droplet ids) never sees one at all.
        assert results[0].distinctness_efficiency == pytest.approx(1.0)

    def test_rateless_session_distinctness_is_one_at_heavy_loss(self):
        """The carousel degrades past ~50% loss (One Level Property
        ceiling); the rateless fountain does not."""
        results = run_single_layer_session(code_spec="lt", k=300,
                                           loss_rates=[0.65], seed=5)
        assert results[0].completed
        assert results[0].distinctness_efficiency == pytest.approx(1.0)

    def test_spec_string_as_positional_code(self):
        results = run_session("rs", [0.1], [4.0], k=200, seed=3)
        assert results[0].completed
        assert results[0].code_spec == "rs"

    def test_spec_with_parameters_labels_results(self):
        results = run_single_layer_session(
            code_spec="lt:c=0.05,delta=0.5", k=200, loss_rates=[0.1],
            seed=2)
        assert results[0].code_spec == "lt:c=0.05,delta=0.5"

    def test_code_spec_requires_k(self):
        with pytest.raises(ParameterError, match="k"):
            run_session(code_spec="lt", ambient_loss_rates=[0.1],
                        capacity_multipliers=[1.0])

    def test_code_and_code_spec_mutually_exclusive(self):
        code = tornado_a(100, seed=0)
        with pytest.raises(ParameterError, match="not both"):
            run_session(code, [0.1], [1.0], code_spec="lt", k=100)
        with pytest.raises(ParameterError, match="required"):
            run_session(ambient_loss_rates=[0.1],
                        capacity_multipliers=[1.0])


class TestSessionResult:
    def _result(self, **overrides):
        fields = dict(
            receiver_id=3,
            observed_loss=0.125,
            efficiency=0.8,
            coding_efficiency=0.9,
            distinctness_efficiency=0.888,
            completed=True,
            rounds=17,
            level_changes=2,
            code_spec="lt:c=0.05",
            overhead=0.25,
        )
        fields.update(overrides)
        return SessionResult(**fields)

    def test_as_row_contents(self):
        row = self._result().as_row()
        assert "recv   3" in row
        assert "lt:c=0.05" in row          # the code spec is in the row
        assert "overhead +25.0%" in row    # and so is the overhead
        assert "loss  12.5%" in row
        assert "eta  80.0%" in row

    def test_as_row_matches_session_output(self):
        result = run_single_layer_session(code_spec="tornado-a", k=200,
                                          loss_rates=[0.1], seed=1)[0]
        row = result.as_row()
        assert "tornado-a" in row
        assert f"{result.overhead:+6.1%}" in row
        # overhead and efficiency describe the same reception count.
        assert result.overhead == pytest.approx(
            1 / result.efficiency - 1, abs=0.02)
