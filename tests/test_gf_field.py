"""Field axioms and vectorised arithmetic for GF(2^8) / GF(2^16)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, ParameterError
from repro.gf import GF256, GF65536
from repro.gf.field import BinaryExtensionField

FIELDS = [GF256, GF65536]


def elements(field):
    return st.integers(min_value=0, max_value=field.order - 1)


def nonzero(field):
    return st.integers(min_value=1, max_value=field.order - 1)


@pytest.mark.parametrize("field", FIELDS, ids=["gf256", "gf65536"])
class TestFieldAxioms:
    def test_add_is_xor(self, field):
        assert field.add(0b1010, 0b0110) == 0b1100

    def test_mul_identity(self, field):
        for a in (1, 2, 7, field.order - 1):
            assert field.mul(a, 1) == a

    def test_mul_zero(self, field):
        assert field.mul(0, 5) == 0
        assert field.mul(5, 0) == 0

    def test_inverse_roundtrip(self, field):
        for a in (1, 2, 3, 100, field.order - 1):
            assert field.mul(a, field.inv(a)) == 1

    def test_div_by_zero_raises(self, field):
        with pytest.raises(FieldError):
            field.div(1, 0)

    def test_inv_zero_raises(self, field):
        with pytest.raises(FieldError):
            field.inv(0)

    def test_pow_matches_repeated_mul(self, field):
        a = 3
        acc = 1
        for e in range(5):
            assert field.pow(a, e) == acc
            acc = field.mul(acc, a)

    def test_pow_negative(self, field):
        a = 7
        assert field.mul(field.pow(a, -1), a) == 1

    def test_generator_order(self, field):
        # exp table wraps after order-1 steps: g^(order-1) == 1
        assert field.exp(field.order - 1) == field.exp(0) == 1


@given(a=elements(GF256), b=elements(GF256), c=elements(GF256))
@settings(max_examples=200)
def test_gf256_mul_commutative_associative_distributive(a, b, c):
    f = GF256
    assert f.mul(a, b) == f.mul(b, a)
    assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)
    assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)


@given(a=nonzero(GF256), b=nonzero(GF256))
@settings(max_examples=100)
def test_gf256_division_inverts_multiplication(a, b):
    f = GF256
    assert f.div(f.mul(a, b), b) == a


@given(a=elements(GF65536), b=elements(GF65536))
@settings(max_examples=60)
def test_gf65536_mul_commutative(a, b):
    assert GF65536.mul(a, b) == GF65536.mul(b, a)


@pytest.mark.parametrize("field", FIELDS, ids=["gf256", "gf65536"])
def test_vectorised_mul_matches_scalar(field):
    rng = np.random.default_rng(1)
    a = rng.integers(0, field.order, size=64).astype(field.dtype)
    b = rng.integers(0, field.order, size=64).astype(field.dtype)
    vec = field.mul_vec(a, b)
    for i in range(a.size):
        assert int(vec[i]) == field.mul(int(a[i]), int(b[i]))


@pytest.mark.parametrize("field", FIELDS, ids=["gf256", "gf65536"])
def test_scalar_mul_vec_matches_scalar(field):
    rng = np.random.default_rng(2)
    vec = rng.integers(0, field.order, size=33).astype(field.dtype)
    for scalar in (0, 1, 2, 19):
        out = field.scalar_mul_vec(scalar, vec)
        for i in range(vec.size):
            assert int(out[i]) == field.mul(scalar, int(vec[i]))


@pytest.mark.parametrize("field", FIELDS, ids=["gf256", "gf65536"])
def test_addmul_vec_accumulates(field):
    rng = np.random.default_rng(3)
    acc = rng.integers(0, field.order, size=16).astype(field.dtype)
    vec = rng.integers(0, field.order, size=16).astype(field.dtype)
    expected = acc ^ field.scalar_mul_vec(5, vec)
    field.addmul_vec(acc, 5, vec)
    assert np.array_equal(acc, expected)


def test_inv_vec_rejects_zero():
    with pytest.raises(FieldError):
        GF256.inv_vec(np.array([1, 0, 2], dtype=np.uint8))


def test_elements_bounds():
    with pytest.raises(ParameterError):
        GF256.elements(257)
    assert GF256.elements(3, start=1).tolist() == [1, 2, 3]


def test_nonprimitive_poly_rejected():
    # x^8 + 1 is not primitive for GF(2^8).
    with pytest.raises(FieldError):
        BinaryExtensionField(8, 0x101, np.uint8)


def test_field_equality_and_hash():
    assert GF256 == GF256
    assert GF256 != GF65536
    assert hash(GF256) != hash(GF65536)
