"""Reverse-binary schedule: Table 5 fidelity and the One Level Property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.experiments.table5 import PAPER_TABLE5
from repro.protocol.layering import LayerConfig
from repro.protocol.schedule import (
    layer_block_range,
    one_level_stream,
    round_schedule,
    table5_matrix,
    transmission_stream,
    verify_one_level_property,
)


class TestLayerConfig:
    def test_geometric_rates(self):
        config = LayerConfig(4)
        assert config.rates() == [1, 1, 2, 4]
        assert config.block_size == 8
        assert config.level_rate(3) == 8
        assert config.level_rate(1) == 2

    def test_single_layer(self):
        config = LayerConfig(1)
        assert config.block_size == 1

    def test_invalid(self):
        with pytest.raises(ParameterError):
            LayerConfig(0)
        with pytest.raises(ParameterError):
            LayerConfig(3).layer_rate(3)


class TestTable5:
    def test_matches_paper_exactly(self):
        assert table5_matrix(4, 8) == PAPER_TABLE5

    def test_round_tiles_block(self):
        """Within every round, the layers' ranges tile the block."""
        for g in (2, 3, 4, 5):
            block = LayerConfig(g).block_size
            for rnd in range(2 ** g):
                covered = []
                for start, length in round_schedule(rnd, g):
                    covered.extend(range(start, start + length))
                assert sorted(covered) == list(range(block)), (g, rnd)

    def test_period(self):
        g = 4
        for layer in range(g):
            assert layer_block_range(layer, 0, g) == \
                layer_block_range(layer, 8, g)

    def test_range_sizes_match_rates(self):
        config = LayerConfig(5)
        for layer in range(5):
            __, length = layer_block_range(layer, 3, 5)
            assert length == config.layer_rate(layer)

    def test_invalid_layer(self):
        with pytest.raises(ParameterError):
            layer_block_range(4, 0, 4)


class TestOneLevelProperty:
    @pytest.mark.parametrize("g", [1, 2, 3, 4, 5])
    def test_verified_for_all_layer_counts(self, g):
        config = LayerConfig(g)
        assert verify_one_level_property(config, config.block_size * 4)

    def test_per_layer_permutation(self):
        """Each layer alone sends a permutation before repeating."""
        config = LayerConfig(4)
        n = config.block_size * 3
        for layer in range(4):
            rate = config.layer_rate(layer) * (n // config.block_size)
            rounds_for_pass = n // rate
            stream = list(transmission_stream(layer, config, n,
                                              rounds_for_pass))
            assert sorted(stream) == list(range(n))

    def test_level_stream_round_structure(self):
        config = LayerConfig(3)
        n = config.block_size * 2
        stream = list(one_level_stream(1, config, n, num_rounds=2))
        # level 1 = layers 0 and 1, each rate 1 per block: 2 blocks ->
        # 4 packets per round.
        per_round = [t for t in stream if t[0] == 0]
        assert len(per_round) == 4

    def test_encoding_size_must_align(self):
        config = LayerConfig(3)
        with pytest.raises(ParameterError):
            list(transmission_stream(0, config, 10, 1))


@given(g=st.integers(min_value=1, max_value=6),
       rnd=st.integers(min_value=0, max_value=200))
@settings(max_examples=80)
def test_tiling_property(g, rnd):
    """Disjoint full-block coverage holds for every g and round."""
    block = LayerConfig(g).block_size
    covered = []
    for start, length in round_schedule(rnd, g):
        covered.extend(range(start, start + length))
    assert sorted(covered) == list(range(block))


@given(g=st.integers(min_value=2, max_value=5),
       level=st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_one_level_property_random(g, level):
    if level >= g:
        level = g - 1
    config = LayerConfig(g)
    n = config.block_size * 2
    seen = set()
    count = 0
    for _, _, idx in one_level_stream(level, config, n, num_rounds=2 ** g):
        if count >= n:
            break
        assert idx not in seen, "duplicate before full coverage"
        seen.add(idx)
        count += 1
    assert len(seen) == n
