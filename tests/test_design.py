"""LP-based degree-distribution design tools."""

import numpy as np
import pytest

from repro.codes.tornado.degree import heavy_tail_distribution
from repro.codes.tornado.design import (
    design_left_distribution,
    edge_to_node_distribution,
    max_design_delta,
    node_to_edge_fractions,
    peeling_condition,
    rho_polynomial,
)
from repro.errors import ParameterError


def test_edge_node_conversion_roundtrip():
    dist = heavy_tail_distribution(10)
    degrees, lam = node_to_edge_fractions(dist)
    back = edge_to_node_distribution(degrees.astype(float), lam)
    assert back.degrees == dist.degrees
    assert np.allclose(back.probabilities, dist.probabilities)


def test_rho_polynomial_integer_degree():
    x = np.linspace(0, 1, 5)
    assert np.allclose(rho_polynomial(6.0, x), x ** 5)


def test_rho_polynomial_fractional_degree_bounds():
    x = np.linspace(0, 1, 20)
    mixed = rho_polynomial(6.5, x)
    assert np.all(mixed <= x ** 5 + 1e-12)
    assert np.all(mixed >= x ** 6 - 1e-12)


def test_peeling_condition_sign():
    """Below threshold the DE slack is positive; above, negative."""
    dist = heavy_tail_distribution(8)
    degrees, lam = node_to_edge_fractions(dist)
    avg_right = dist.average_degree / 0.5
    assert peeling_condition(0.30, degrees, lam, avg_right) > 0
    assert peeling_condition(0.49, degrees, lam, avg_right) < 0


def test_design_feasible_at_moderate_delta():
    result = design_left_distribution(0.40, avg_left=4.0)
    assert result is not None
    assert result.distribution.average_degree == pytest.approx(4.0, abs=0.2)
    # The verification grid is finer than the LP grid, so allow numerical
    # slack at the 1e-4 level.
    assert result.slack >= -1e-4


def test_design_infeasible_beyond_capacity():
    # Loss beyond beta = 0.5 is information-theoretically impossible.
    assert design_left_distribution(0.55, avg_left=4.0) is None


def test_design_validates_delta():
    with pytest.raises(ParameterError):
        design_left_distribution(0.0, avg_left=4.0)


def test_max_design_delta_bracket():
    delta = max_design_delta(4.0, max_degree=40, tolerance=5e-3)
    assert 0.4 < delta < 0.5
