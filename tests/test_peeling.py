"""The shared peeling engine, driven directly with hand-built systems."""

import numpy as np
import pytest

from repro.codes.peeling import PeelingEngine, gf2_gauss_jordan
from repro.errors import DecodeFailure, ParameterError


def payload(*values):
    return np.asarray(values, dtype=np.uint8)


class TestDynamicEquations:
    def test_degree_one_equation_solves_directly(self):
        eng = PeelingEngine(3, payload_size=2)
        assert eng.add_equation([1], payload(7, 9))
        assert eng.known[1]
        assert np.array_equal(eng.values[1], payload(7, 9))

    def test_substitution_chain(self):
        # x0 = 5; x0 ^ x1 = 3  =>  x1 = 6; x1 ^ x2 = 1  =>  x2 = 7.
        eng = PeelingEngine(3, payload_size=1)
        eng.add_equation([1, 2], payload(1))
        eng.add_equation([0, 1], payload(3))
        assert not eng.is_complete
        eng.add_equation([0], payload(5))
        assert eng.is_complete
        assert np.array_equal(eng.values[:, 0], [5, 6, 7])

    def test_redundant_equation_reports_false(self):
        eng = PeelingEngine(2, payload_size=1)
        assert eng.add_equation([0], payload(1))
        assert eng.add_equation([1], payload(2))
        assert not eng.add_equation([0, 1], payload(3))

    def test_known_participants_fold_into_rhs(self):
        eng = PeelingEngine(2, payload_size=1)
        eng.add_equation([0], payload(0xF0))
        # x0 ^ x1 = 0xFF with x0 known => x1 = 0x0F immediately.
        eng.add_equation([0, 1], payload(0xFF))
        assert np.array_equal(eng.values[1], payload(0x0F))

    def test_structural_mode_tracks_completion_only(self):
        eng = PeelingEngine(2)
        eng.add_equation([0, 1])
        eng.add_equation([0])
        assert eng.is_complete
        with pytest.raises(ParameterError):
            eng.source_data()

    def test_participant_range_checked(self):
        eng = PeelingEngine(2)
        with pytest.raises(ParameterError):
            eng.add_equation([2])

    def test_source_data_before_completion_fails(self):
        eng = PeelingEngine(2, payload_size=1)
        eng.add_equation([0], payload(1))
        with pytest.raises(DecodeFailure):
            eng.source_data()
        assert list(eng.missing_source_indices()) == [1]


class TestInactivation:
    def test_stalled_cycle_needs_elimination(self):
        # x0^x1, x1^x2, x0^x2, x0^x1^x2: no equation ever has a single
        # unknown, yet the system has full rank over GF(2).
        values = np.asarray([[3], [5], [6]], dtype=np.uint8)

        def rhs(*nodes):
            return np.bitwise_xor.reduce(values[list(nodes)], axis=0)

        pure = PeelingEngine(3, payload_size=1, inactivation_limit=0)
        solver = PeelingEngine(3, payload_size=1, inactivation_limit=3)
        for eng in (pure, solver):
            eng.add_equation([0, 1], rhs(0, 1))
            eng.add_equation([1, 2], rhs(1, 2))
            eng.add_equation([0, 2], rhs(0, 2))
            eng.add_equation([0, 1, 2], rhs(0, 1, 2))
            eng.maybe_inactivate()
        assert not pure.is_complete
        assert solver.is_complete
        assert solver.inactivation_runs == 1
        assert np.array_equal(solver.values, values)

    def test_underdetermined_system_stays_incomplete(self):
        eng = PeelingEngine(3, payload_size=1, inactivation_limit=3)
        eng.add_equation([0, 1], payload(1))
        eng.add_equation([1, 2], payload(2))
        eng.maybe_inactivate()
        assert not eng.is_complete

    def test_failed_attempt_not_repeated_until_system_changes(self):
        eng = PeelingEngine(4, inactivation_limit=4)
        eng.add_equation([0, 1])
        eng.add_equation([1, 2])
        eng.add_equation([0, 2])
        eng.add_equation([0, 1, 2])
        eng.maybe_inactivate()
        runs = eng.inactivation_runs
        eng.maybe_inactivate()          # nothing changed -> no new attempt
        assert eng.inactivation_runs == runs
        eng.add_equation([3])           # progress -> retry allowed
        eng.maybe_inactivate()
        assert eng.is_complete


class TestStaticEquations:
    def test_static_system_peels_from_observations(self):
        # One check node c = x0 ^ x1 laid out as node 2; observing x0 and
        # c recovers x1 (the Tornado feeding pattern).
        eng = PeelingEngine(3, payload_size=1)
        nodes = np.asarray([0, 1, 2])
        eqs = np.asarray([0, 0, 0])
        eng.load_static_equations(1, nodes, eqs)
        eng.observe_nodes(np.asarray([0]), payload(3)[np.newaxis])
        eng.observe_nodes(np.asarray([2]), payload(6)[np.newaxis])
        assert np.array_equal(eng.values[1], payload(5))

    def test_static_install_rejected_after_feeding(self):
        eng = PeelingEngine(2)
        eng.add_equation([0])
        with pytest.raises(ParameterError):
            eng.load_static_equations(1, np.asarray([0, 1]),
                                      np.asarray([0, 0]))


class TestGaussJordan:
    def test_full_rank_solves(self):
        # x0^x1 = 1, x1 = 1  ->  x0 = 0, x1 = 1.
        mat = np.asarray([[0b11], [0b10]], dtype=np.uint64)
        rhs = np.asarray([[1], [1]], dtype=np.uint8)
        solved = gf2_gauss_jordan(mat, 2, rhs)
        assert solved is not None
        assert rhs[solved][0, 0] == 0 and rhs[solved][1, 0] == 1

    def test_rank_deficient_returns_none(self):
        mat = np.asarray([[0b11], [0b11]], dtype=np.uint64)
        assert gf2_gauss_jordan(mat, 2, None) is None
