"""Loss models, traces, channels, multicast fabric, event loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.reed_solomon import cauchy_code
from repro.errors import ParameterError
from repro.fountain.carousel import CarouselServer
from repro.fountain.packets import EncodingPacket, PacketHeader
from repro.net.channel import LossyChannel
from repro.net.events import EventLoop
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, TraceLoss
from repro.net.multicast import MulticastNetwork
from repro.net.traces import synthesize_mbone_traces


class TestBernoulli:
    def test_rate_matches(self):
        model = BernoulliLoss(0.3)
        losses = model.losses(50_000, 0)
        assert abs(losses.mean() - 0.3) < 0.01
        assert model.expected_loss_rate() == 0.3

    def test_zero_loss(self):
        assert not BernoulliLoss(0.0).losses(100, 0).any()

    def test_invalid(self):
        with pytest.raises(ParameterError):
            BernoulliLoss(1.0)
        with pytest.raises(ParameterError):
            BernoulliLoss(-0.1)

    def test_deliveries_complement(self):
        model = BernoulliLoss(0.5)
        a = model.losses(100, 7)
        b = model.deliveries(100, 7)
        assert np.array_equal(a, ~b)


class TestGilbertElliott:
    def test_stationary_rate(self):
        model = GilbertElliottLoss.from_loss_and_burst(0.2, 5.0)
        assert model.expected_loss_rate() == pytest.approx(0.2)
        losses = model.losses(60_000, 1)
        assert abs(losses.mean() - 0.2) < 0.02

    def test_burstiness(self):
        """Mean run length of losses should approach the burst target."""
        model = GilbertElliottLoss.from_loss_and_burst(0.2, 8.0)
        losses = model.losses(60_000, 2).astype(int)
        changes = np.diff(losses)
        starts = int((changes == 1).sum())
        total_lost = int(losses.sum())
        mean_burst = total_lost / max(starts, 1)
        assert mean_burst > 4.0  # far burstier than Bernoulli (~1.25)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            GilbertElliottLoss(0.0, 0.5)
        with pytest.raises(ParameterError):
            GilbertElliottLoss.from_loss_and_burst(0.2, 0.5)


class TestTraceLoss:
    def test_replay_with_offset(self):
        trace = np.array([True, False, False, True])
        model = TraceLoss(trace, offset=1)
        out = model.losses(6)
        assert out.tolist() == [False, False, True, True, False, False]

    def test_rate(self):
        model = TraceLoss(np.array([True, False]))
        assert model.expected_loss_rate() == 0.5

    def test_invalid(self):
        with pytest.raises(ParameterError):
            TraceLoss(np.zeros((2, 2), dtype=bool))


class TestSyntheticTraces:
    def test_shape_and_calibration(self):
        traces = synthesize_mbone_traces(40, 30_000, rng=3)
        assert traces.num_receivers == 40
        assert traces.length == 30_000
        rates = traces.loss_rates()
        # Heterogeneous: low-loss and high-loss receivers both present.
        assert rates.min() < 0.08
        assert rates.max() > 0.25
        # Ensemble mean near the paper's ~18% (tolerant band).
        assert 0.10 < traces.average_loss_rate() < 0.30

    def test_offsets_in_range(self):
        traces = synthesize_mbone_traces(5, 1000, rng=4)
        offsets = traces.random_offsets(5)
        assert offsets.size == 5
        assert (offsets >= 0).all() and (offsets < 1000).all()

    def test_loss_model_roundtrip(self):
        traces = synthesize_mbone_traces(3, 1000, rng=5)
        model = traces.loss_model(1, offset=10)
        assert model.losses(5).tolist() == traces.traces[1][10:15].tolist()


class TestChannel:
    def test_observed_rate(self):
        channel = LossyChannel(BernoulliLoss(0.4), rng=0)
        channel.delivery_mask(20_000)
        assert abs(channel.observed_loss_rate - 0.4) < 0.02

    def test_transmit_filters(self):
        code = cauchy_code(8)
        enc = code.encode(np.zeros((8, 2), dtype=np.uint8))
        server = CarouselServer(code, enc, seed=1)
        channel = LossyChannel(BernoulliLoss(0.5), rng=2)
        survivors = list(channel.transmit(server.packets(200)))
        assert 0 < len(survivors) < 200
        assert channel.sent == 200
        assert channel.delivered == len(survivors)


class TestMulticast:
    def test_join_leave_delivery(self):
        net = MulticastNetwork(2)
        net.attach_receiver(1, LossyChannel(BernoulliLoss(0.0), rng=0))
        net.attach_receiver(2, LossyChannel(BernoulliLoss(0.0), rng=1))
        net.join(1, 0)
        net.join(2, 1)
        got = []
        pkt = EncodingPacket(PacketHeader(0, 0, 0),
                             np.zeros(2, dtype=np.uint8))
        net.transmit(0, pkt, lambda rid, p: got.append(rid))
        assert got == [1]
        net.leave(1, 0)
        net.transmit(0, pkt, lambda rid, p: got.append(rid))
        assert got == [1]
        assert net.subscribed_groups(2) == [1]

    def test_unattached_receiver_rejected(self):
        net = MulticastNetwork(1)
        with pytest.raises(ParameterError):
            net.join(5, 0)

    def test_join_and_leave_mid_sweep(self):
        """Membership changes take effect from the very next transmit."""
        net = MulticastNetwork(1)
        for rid in (1, 2, 3):
            net.attach_receiver(rid, LossyChannel(BernoulliLoss(0.0),
                                                  rng=rid))
        net.join(1, 0)
        net.join(2, 0)
        pkt = EncodingPacket(PacketHeader(0, 0, 0),
                             np.zeros(2, dtype=np.uint8))
        got = []
        for step in range(10):
            if step == 4:
                net.join(3, 0)      # late joiner catches the tail
            if step == 7:
                net.leave(1, 0)     # early leaver misses it
            net.transmit(0, pkt, lambda rid, p: got.append((step, rid)))
        per_receiver = {rid: sorted(s for s, r in got if r == rid)
                        for rid in (1, 2, 3)}
        assert per_receiver[1] == [0, 1, 2, 3, 4, 5, 6]
        assert per_receiver[2] == list(range(10))
        assert per_receiver[3] == [4, 5, 6, 7, 8, 9]

    def test_per_receiver_loss_deterministic_under_seeds(self):
        """Fixed channel seeds replay the exact same delivery pattern."""

        def run():
            net = MulticastNetwork(1)
            for rid in (1, 2):
                net.attach_receiver(
                    rid, LossyChannel(BernoulliLoss(0.5), rng=100 + rid))
                net.join(rid, 0)
            pkt = EncodingPacket(PacketHeader(0, 0, 0),
                                 np.zeros(2, dtype=np.uint8))
            got = []
            for step in range(200):
                net.transmit(0, pkt,
                             lambda rid, p: got.append((step, rid)))
            return got

        first, second = run(), run()
        assert first == second
        # ... and the two receivers' loss processes are independent.
        assert ({s for s, r in first if r == 1}
                != {s for s, r in first if r == 2})

    def test_zero_subscriber_group_is_a_no_op(self):
        """Transmitting into an empty group delivers (and sends) nothing."""
        net = MulticastNetwork(2)
        channel = LossyChannel(BernoulliLoss(0.0), rng=0)
        net.attach_receiver(1, channel)
        net.join(1, 0)
        pkt = EncodingPacket(PacketHeader(0, 0, 0),
                             np.zeros(2, dtype=np.uint8))
        delivered = []
        net.transmit(1, pkt, lambda rid, p: delivered.append(rid))
        assert delivered == []
        # No subscriber means no channel was exercised at all.
        assert channel.sent == 0 and channel.delivered == 0

    def test_leave_without_join_is_harmless(self):
        net = MulticastNetwork(1)
        net.attach_receiver(1, LossyChannel(BernoulliLoss(0.0), rng=0))
        net.leave(1, 0)  # never joined: discard, not KeyError
        assert net.subscribed_groups(1) == []


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5, lambda: seen.append("b"))
        loop.schedule(1, lambda: seen.append("a"))
        loop.schedule(5, lambda: seen.append("c"))
        loop.run_until(10)
        assert seen == ["a", "b", "c"]
        assert loop.now == 10

    def test_schedule_in(self):
        loop = EventLoop()
        seen = []
        loop.run_until(3)
        loop.schedule_in(2, lambda: seen.append(loop.now))
        loop.run_all()
        assert seen == [5]

    def test_no_past_scheduling(self):
        loop = EventLoop()
        loop.run_until(10)
        with pytest.raises(ParameterError):
            loop.schedule(5, lambda: None)

    def test_cascading_events(self):
        loop = EventLoop()
        seen = []

        def recurring():
            seen.append(loop.now)
            if loop.now < 6:
                loop.schedule_in(2, recurring)

        loop.schedule(0, recurring)
        loop.run_all()
        assert seen == [0, 2, 4, 6]
        assert loop.pending == 0
