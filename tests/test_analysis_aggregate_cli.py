"""Analysis tools, multi-source aggregation, and the file CLI."""

import numpy as np
import pytest

from repro.codes.tornado.analysis import (
    asymptotic_threshold,
    density_evolution_converges,
    finite_length_threshold,
    overhead_lower_bound,
    peel_single_graph,
)
from repro.codes.tornado.degree import (
    heavy_tail_distribution,
    two_point_distribution,
)
from repro.codes.tornado.graph import _configuration_model
from repro.codes.tornado.presets import tornado_a
from repro.errors import DecodeFailure, ParameterError
from repro.fountain.aggregate import (
    MultiSourceClient,
    simulate_aggregate_download,
)
from repro.net.loss import BernoulliLoss
from repro.utils.rng import ensure_rng
from repro import cli


class TestDensityEvolution:
    def test_low_delta_converges(self):
        dist = two_point_distribution(3, 20, 0.30)
        assert density_evolution_converges(dist, 0.30)

    def test_above_capacity_diverges(self):
        dist = two_point_distribution(3, 20, 0.30)
        assert not density_evolution_converges(dist, 0.499)

    def test_threshold_in_sane_band(self):
        dist = two_point_distribution(3, 20, 0.30)
        threshold = asymptotic_threshold(dist, tolerance=1e-3)
        assert 0.40 < threshold < 0.50

    def test_heavy_tail_threshold_known_value(self):
        """Heavy-tail D=8 with near-regular right: threshold ~0.47."""
        threshold = asymptotic_threshold(heavy_tail_distribution(8),
                                         tolerance=1e-3)
        assert threshold == pytest.approx(0.472, abs=0.01)

    def test_overhead_bound_consistent(self):
        dist = two_point_distribution(3, 20, 0.30)
        bound = overhead_lower_bound(dist)
        assert bound == pytest.approx(
            1 - 2 * asymptotic_threshold(dist), abs=5e-3)

    def test_delta_validation(self):
        with pytest.raises(ParameterError):
            density_evolution_converges(two_point_distribution(3, 20, 0.3),
                                        1.5)


class TestSingleGraphPeeling:
    def test_no_loss_nothing_to_do(self):
        g = _configuration_model(100, 50, two_point_distribution(3, 20, 0.3),
                                 ensure_rng(0))
        assert peel_single_graph(g, np.array([], dtype=np.int64)) == 0

    def test_light_loss_recovers(self):
        g = _configuration_model(400, 200,
                                 two_point_distribution(3, 20, 0.3),
                                 ensure_rng(1))
        lost = ensure_rng(2).permutation(400)[:60]  # 15% loss
        assert peel_single_graph(g, lost) == 0

    def test_overload_cannot_recover(self):
        """More erasures than checks is information-theoretically dead."""
        g = _configuration_model(100, 50,
                                 two_point_distribution(3, 20, 0.3),
                                 ensure_rng(3))
        lost = ensure_rng(4).permutation(100)[:70]
        assert peel_single_graph(g, lost) > 0

    def test_finite_threshold_below_asymptotic(self):
        dist = two_point_distribution(3, 20, 0.30)
        finite = finite_length_threshold(dist, 300, trials=6, rng=5)
        asym = asymptotic_threshold(dist, tolerance=1e-3)
        assert finite.threshold <= asym + 0.02


class TestAggregation:
    def test_multi_source_client_counts(self):
        code = tornado_a(200, seed=0)
        client = MultiSourceClient(code)
        client.receive_from(0, 5)
        client.receive_from(1, 5)  # duplicate across mirrors
        client.receive_from(1, 6)
        assert client.total_received == 3
        assert client.distinct_received == 2
        assert client.reports[1].duplicate_rate == pytest.approx(0.5)

    def test_more_mirrors_faster(self):
        code = tornado_a(300, seed=1)
        loss = BernoulliLoss(0.2)
        one = simulate_aggregate_download(code, 1, loss, rng=2)
        four = simulate_aggregate_download(code, 4, loss, rng=3)
        assert four.slots < one.slots
        assert four.stats.distinctness_efficiency <= 1.0

    def test_single_mirror_matches_plain_carousel_order_of_magnitude(self):
        code = tornado_a(300, seed=1)
        result = simulate_aggregate_download(code, 1, BernoulliLoss(0.0),
                                             rng=4)
        # No loss, one mirror: completes within ~ (1+eps)k slots.
        assert result.slots <= 1.35 * code.k

    def test_index_validation(self):
        code = tornado_a(100, seed=2)
        client = MultiSourceClient(code)
        with pytest.raises(ParameterError):
            client.receive_from(0, code.n)

    def test_impossible_download_raises(self):
        code = tornado_a(150, seed=3)
        from repro.net.loss import TraceLoss
        outage = TraceLoss(np.ones(8, dtype=bool))
        with pytest.raises(DecodeFailure):
            simulate_aggregate_download(code, 2, outage, rng=5, max_cycles=2)


class TestCli:
    def test_encode_decode_roundtrip(self, tmp_path):
        original = tmp_path / "input.bin"
        payload = bytes(np.random.default_rng(0).integers(
            0, 256, 50_000, dtype=np.uint8))
        original.write_bytes(payload)
        shards = tmp_path / "shards"
        assert cli.main(["encode", str(original), str(shards),
                         "--preset", "b", "--packet-size", "512"]) == 0
        assert (shards / "manifest.json").exists()
        out = tmp_path / "out.bin"
        assert cli.main(["decode", str(shards), str(out)]) == 0
        assert out.read_bytes() == payload

    def test_decode_survives_losing_shards(self, tmp_path):
        original = tmp_path / "input.bin"
        original.write_bytes(b"x" * 120_000)
        shards = tmp_path / "shards"
        cli.main(["encode", str(original), str(shards),
                  "--preset", "b", "--packet-size", "512"])
        # Delete 40% of the shards, scattered.
        all_shards = sorted(shards.glob("*.pkt"))
        rng = np.random.default_rng(1)
        for path in rng.permutation(all_shards)[:int(0.4 * len(all_shards))]:
            path.unlink()
        out = tmp_path / "out.bin"
        assert cli.main(["decode", str(shards), str(out)]) == 0
        assert out.read_bytes() == b"x" * 120_000

    def test_decode_fails_cleanly_with_too_few(self, tmp_path):
        original = tmp_path / "input.bin"
        original.write_bytes(b"y" * 60_000)
        shards = tmp_path / "shards"
        cli.main(["encode", str(original), str(shards),
                  "--packet-size", "512"])
        all_shards = sorted(shards.glob("*.pkt"))
        for path in all_shards[:int(0.8 * len(all_shards))]:
            path.unlink()
        assert cli.main(["decode", str(shards),
                         str(tmp_path / "out.bin")]) == 1

    def test_decode_without_manifest(self, tmp_path):
        assert cli.main(["decode", str(tmp_path),
                         str(tmp_path / "o.bin")]) == 2

    def test_info(self, capsys):
        assert cli.main(["info", "--k", "500"]) == 0
        out = capsys.readouterr().out
        assert "tornado-a k=500" in out

    def test_codes_list(self, capsys):
        assert cli.main(["codes", "list"]) == 0
        out = capsys.readouterr().out
        # Every registered family appears, with parameters and modes.
        for family in ("tornado-a", "tornado-b", "lt", "rs", "raptor"):
            assert f"\n{family}\n" in f"\n{out}"
        assert "c=0.03" in out and "delta=0.1" in out
        assert "eps=0.05" in out  # raptor's precode rate, with default
        assert "construction='cauchy'" in out
        assert "carousel" in out and "rateless" in out and "layered" in out
        assert "yes (no n)" in out  # lt is flagged rateless

    def test_codes_cache_stats(self, capsys):
        """cache-stats reports the raptor geometry+plan cache counters,
        and they move when the shared cache is exercised."""
        import json

        from repro.codes.raptor.cache import cached_raptor_assets

        assert cli.main(["codes", "cache-stats", "--json"]) == 0
        before = json.loads(capsys.readouterr().out)
        stats = before["caches"]["raptor-geometry-plan"]
        assert {"size", "maxsize", "hits", "misses", "evictions",
                "plans_cached"} <= set(stats)

        cached_raptor_assets(12, seed=321)   # miss (or prior entry)
        cached_raptor_assets(12, seed=321)   # guaranteed hit
        assert cli.main(["codes", "cache-stats", "--json"]) == 0
        after = json.loads(capsys.readouterr().out)["caches"][
            "raptor-geometry-plan"]
        assert after["hits"] > stats["hits"]
        assert after["size"] >= 1

        # The human-readable table carries the same counters.
        assert cli.main(["codes", "cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "raptor-geometry-plan" in out
        assert "hits:" in out and "misses:" in out

    def test_codes_list_json(self, capsys):
        """--json shares the table's rows, machine-readable."""
        import json

        assert cli.main(["codes", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        families = {row["name"]: row for row in payload["families"]}
        assert set(families) == {"tornado-a", "tornado-b", "lt", "rs",
                                 "interleaved", "raptor"}
        assert families["lt"]["rateless"] is True
        assert families["lt"]["parameters"] == {"c": 0.03, "delta": 0.1}
        assert families["rs"]["parameters"]["construction"] == "cauchy"
        # Raptor rides the same tunable discovery: every knob surfaces
        # with its default so spec strings are self-documenting.
        assert families["raptor"]["rateless"] is True
        assert families["raptor"]["parameters"] == {
            "eps": 0.05, "c": 0.03, "delta": 0.1}
        assert "rateless" in families["raptor"]["modes"]
        assert "layered" in families["tornado-a"]["modes"]
        # The JSON rows and the human table come from one formatter.
        assert set(families) == {row["name"] for row in cli._family_rows()}

    def test_send_accepts_spec_strings(self, tmp_path, capsys):
        original = tmp_path / "input.bin"
        original.write_bytes(bytes(np.random.default_rng(2).integers(
            0, 256, 30_000, dtype=np.uint8)))
        out_dir = tmp_path / "out"
        assert cli.main(["send", str(original), str(out_dir),
                         "--code", "lt:c=0.05,delta=0.5",
                         "--block-size", "8192", "--loss", "0.1"]) == 0
        assert "lt:c=0.05,delta=0.5" in capsys.readouterr().out
        back = tmp_path / "back.bin"
        assert cli.main(["recv", str(out_dir), str(back)]) == 0
        assert back.read_bytes() == original.read_bytes()

    def test_send_rejects_unknown_spec(self, tmp_path, capsys):
        original = tmp_path / "input.bin"
        original.write_bytes(b"z" * 10_000)
        assert cli.main(["send", str(original), str(tmp_path / "out"),
                         "--code", "raptorq"]) == 2
        assert "registered families" in capsys.readouterr().err
