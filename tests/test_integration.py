"""Cross-module integration: full pipelines exactly as a user runs them."""

import numpy as np
import pytest

from repro import (
    InterleavedCode,
    bytes_to_packets,
    cauchy_code,
    packets_to_bytes,
    tornado_a,
    tornado_b,
)
from repro.fountain.carousel import CarouselServer
from repro.fountain.client import ClientMode, FountainClient
from repro.net.channel import LossyChannel
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.net.traces import synthesize_mbone_traces
from repro.sim.overhead import ThresholdPool
from repro.sim.reception import fountain_packets_until


class TestFileRoundtrips:
    """bytes -> packets -> encode -> lossy channel -> decode -> bytes."""

    @pytest.mark.parametrize("factory", [tornado_a, tornado_b, cauchy_code],
                             ids=["tornado-a", "tornado-b", "cauchy"])
    def test_file_through_lossy_carousel(self, factory):
        data = np.random.default_rng(0).integers(
            0, 256, 40_000, dtype=np.uint8).tobytes()
        if factory is cauchy_code:
            # n = 2k > 256 routes this RS code to GF(2^16): packets are
            # viewed as 16-bit symbols on the byte stream.
            source = bytes_to_packets(data, 256, dtype=np.uint16)
            code = cauchy_code(source.shape[0])
        else:
            source = bytes_to_packets(data, 256)
            code = factory(source.shape[0], seed=1)
        encoding = code.encode(source)
        server = CarouselServer(code, encoding, seed=2)
        channel = LossyChannel(BernoulliLoss(0.3), rng=3)
        client = FountainClient(code, mode=ClientMode.INCREMENTAL)
        for packet in channel.transmit(server.packets(10 * code.n)):
            if client.receive(packet):
                break
        assert client.is_complete
        assert packets_to_bytes(client.source_data(), len(data)) == data

    def test_interleaved_file_roundtrip(self):
        data = bytes(range(256)) * 100
        source = bytes_to_packets(data, 128)
        code = InterleavedCode(source.shape[0], 20)
        encoding = code.encode(source)
        server = CarouselServer(code, encoding,
                                order=code.carousel_order())
        channel = LossyChannel(BernoulliLoss(0.2), rng=4)
        client = FountainClient(code, mode=ClientMode.INCREMENTAL)
        for packet in channel.transmit(server.packets(50 * code.n)):
            if client.receive(packet):
                break
        assert client.is_complete
        assert packets_to_bytes(client.source_data(), len(data)) == data


class TestWireFormat:
    def test_packets_survive_serialisation(self):
        """Headers and payloads cross a byte-level 'network' intact."""
        from repro.fountain.packets import EncodingPacket
        code = tornado_a(130, seed=5)
        rng = np.random.default_rng(6)
        src = rng.integers(0, 256, size=(130, 64), dtype=np.uint8)
        encoding = code.encode(src)
        server = CarouselServer(code, encoding, seed=7)
        client = FountainClient(code, mode=ClientMode.INCREMENTAL)
        for packet in server.packets(code.n):
            wire = packet.to_bytes()          # serialise
            restored = EncodingPacket.from_bytes(wire)  # deserialise
            if client.receive(restored):
                break
        assert client.is_complete
        assert np.array_equal(client.source_data(), src)


class TestConsistencyAcrossPaths:
    def test_pool_simulation_agrees_with_direct_client(self):
        """The fast simulation path and the packet-level client agree on
        reception counts for identical loss processes (statistically)."""
        code = tornado_a(400, seed=8)
        pool = ThresholdPool.for_code(code, trials=40, rng=9)
        p = 0.3
        sim_totals = [
            fountain_packets_until(int(t), code.n, BernoulliLoss(p),
                                   rng=100 + i)
            for i, t in enumerate(pool.sample(40, rng=10))
        ]
        # Direct client runs over the real carousel.
        client_totals = []
        for trial in range(15):
            server = CarouselServer(code, seed=trial)
            client = FountainClient(code, mode=ClientMode.INCREMENTAL)
            loss = BernoulliLoss(p)
            rng = np.random.default_rng(200 + trial)
            for index in server.index_stream(10 * code.n):
                if loss.losses(1, rng)[0]:
                    continue
                if client.receive_index(int(index)):
                    break
            assert client.is_complete
            client_totals.append(client.total_received)
        assert np.mean(client_totals) == pytest.approx(
            np.mean(sim_totals), rel=0.15)

    def test_bursty_and_uniform_loss_same_expected_efficiency(self):
        """Tornado efficiency is insensitive to burstiness at equal rate
        (the Section 6.4 takeaway)."""
        code = tornado_a(500, seed=11)
        pool = ThresholdPool.for_code(code, trials=30, rng=12)
        uniform = BernoulliLoss(0.2)
        bursty = GilbertElliottLoss.from_loss_and_burst(0.2, 8)
        t_uniform = np.mean([
            fountain_packets_until(int(t), code.n, uniform, rng=i)
            for i, t in enumerate(pool.sample(30, rng=13))])
        t_bursty = np.mean([
            fountain_packets_until(int(t), code.n, bursty, rng=i)
            for i, t in enumerate(pool.sample(30, rng=14))])
        assert t_bursty == pytest.approx(t_uniform, rel=0.1)


class TestFailureInjection:
    def test_client_survives_total_outage_then_recovers(self):
        code = tornado_a(200, seed=15)
        rng = np.random.default_rng(16)
        src = rng.integers(0, 256, size=(200, 16), dtype=np.uint8)
        encoding = code.encode(src)
        server = CarouselServer(code, encoding, seed=17)
        client = FountainClient(code, mode=ClientMode.INCREMENTAL)
        packets = list(server.packets(3 * code.n))
        # Outage: the first 1.5 cycles vanish entirely.
        for packet in packets[int(1.5 * code.n):]:
            if client.receive(packet):
                break
        assert client.is_complete
        assert np.array_equal(client.source_data(), src)

    def test_decoder_rejects_corrupt_index(self):
        code = tornado_a(100, seed=18)
        decoder = code.new_decoder()
        with pytest.raises(Exception):
            decoder.add_packet(code.n + 5)

    def test_trace_receiver_with_outages_completes(self):
        traces = synthesize_mbone_traces(6, 30_000, rng=19)
        worst = int(np.argmax(traces.loss_rates()))
        code = tornado_a(300, seed=20)
        pool = ThresholdPool.for_code(code, trials=10, rng=21)
        total = fountain_packets_until(
            int(pool.sample(1, rng=22)[0]), code.n,
            traces.loss_model(worst), rng=23, max_cycles=2000)
        assert total >= code.k
