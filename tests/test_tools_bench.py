"""tools/check_bench.py: the perf-regression gate must pass honest runs
and demonstrably fail on injected regressions."""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    pathlib.Path(__file__).resolve().parent.parent / "tools"
    / "check_bench.py")
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


BASELINE = {
    "results": [
        {
            "case": "flash-crowd",
            "code": "tornado-b",
            "receivers": 20000,
            "num_blocks": 64,
            "completion_rate": 1.0,
            "overhead_p50": 0.065,
            "overhead_p99": 0.175,
            "receivers_per_second": 14000.0,
            "seconds": 1.4,
        },
        {
            "case": "spray",
            "sender_pps": 120000,
            "packets": 4000,
        },
    ]
}


def write_pair(tmp_path, current_mutation=None):
    """Baseline and (optionally mutated) current dirs for main()."""
    base_dir = tmp_path / "baseline"
    cur_dir = tmp_path / "current"
    base_dir.mkdir()
    cur_dir.mkdir()
    (base_dir / "BENCH_x.json").write_text(json.dumps(BASELINE))
    current = json.loads(json.dumps(BASELINE))
    if current_mutation is not None:
        current_mutation(current)
    (cur_dir / "BENCH_x.json").write_text(json.dumps(current))
    return ["--baseline-dir", str(base_dir), "--current-dir", str(cur_dir)]


class TestMetricRules:
    def test_config_drift_fails(self):
        assert check_bench.compare_metric("num_blocks", 64, 32) is not None
        assert check_bench.compare_metric("code", "tornado-b", "lt") \
            is not None
        assert check_bench.compare_metric("num_blocks", 64, 64) is None

    def test_overhead_gates_worse_direction_only(self):
        assert check_bench.compare_metric("overhead_p99", 0.10, 0.30) \
            is not None
        assert check_bench.compare_metric("overhead_p99", 0.10, 0.12) is None
        # improvement never fails
        assert check_bench.compare_metric("overhead_p99", 0.10, 0.01) is None

    def test_completion_rate_gates_drops(self):
        assert check_bench.compare_metric("completion_rate", 1.0, 0.9) \
            is not None
        assert check_bench.compare_metric("completion_rate", 1.0, 0.99) \
            is None

    def test_timing_allows_wobble_gates_collapse(self):
        assert check_bench.compare_metric("seconds", 1.0, 3.0) is None
        assert check_bench.compare_metric("seconds", 1.0, 5.0) is not None
        assert check_bench.compare_metric("receivers_per_second",
                                          10000.0, 4000.0) is None
        assert check_bench.compare_metric("receivers_per_second",
                                          10000.0, 2000.0) is not None

    def test_non_numeric_current_fails(self):
        assert check_bench.compare_metric("seconds", 1.0, "fast") \
            is not None

    def test_batched_ingest_speedup_has_absolute_floor(self):
        # Below the 4x floor fails even when it beats the baseline.
        assert check_bench.compare_metric(
            "batched_ingest_speedup", 3.0, 3.5) is not None
        assert check_bench.compare_metric(
            "batched_ingest_speedup", 6.5, 4.2) is None
        # The relative factor still guards collapse above the floor.
        assert check_bench.compare_metric(
            "batched_ingest_speedup", 12.0, 5.0) is not None


class TestCompare:
    def test_identical_passes(self, tmp_path, capsys):
        assert check_bench.main(write_pair(tmp_path)) == 0
        assert "pass the perf gate" in capsys.readouterr().out

    def test_injected_overhead_regression_fails(self, tmp_path, capsys):
        def worsen(payload):
            payload["results"][0]["overhead_p99"] = 0.5

        assert check_bench.main(write_pair(tmp_path, worsen)) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "overhead_p99" in out

    def test_throughput_collapse_fails(self, tmp_path):
        def collapse(payload):
            payload["results"][0]["receivers_per_second"] = 1000.0

        assert check_bench.main(write_pair(tmp_path, collapse)) == 1

    def test_timing_wobble_passes(self, tmp_path):
        def wobble(payload):
            payload["results"][0]["seconds"] = 2.8
            payload["results"][0]["receivers_per_second"] = 5000.0

        assert check_bench.main(write_pair(tmp_path, wobble)) == 0

    def test_missing_case_fails(self, tmp_path, capsys):
        def drop(payload):
            payload["results"] = payload["results"][:1]

        assert check_bench.main(write_pair(tmp_path, drop)) == 1
        assert "case missing" in capsys.readouterr().out

    def test_missing_metric_fails(self, tmp_path, capsys):
        def drop(payload):
            del payload["results"][0]["overhead_p50"]

        assert check_bench.main(write_pair(tmp_path, drop)) == 1
        assert "metric missing" in capsys.readouterr().out

    def test_new_case_and_metric_pass_with_note(self, tmp_path, capsys):
        def extend(payload):
            payload["results"][0]["overhead_p999"] = 0.4
            payload["results"].append({"case": "brand-new", "seconds": 1.0})

        assert check_bench.main(write_pair(tmp_path, extend)) == 0
        out = capsys.readouterr().out
        assert "new metric" in out and "new case" in out

    def test_config_drift_fails_gate(self, tmp_path, capsys):
        def drift(payload):
            payload["results"][0]["receivers"] = 10000

        assert check_bench.main(write_pair(tmp_path, drift)) == 1
        assert "configuration drift" in capsys.readouterr().out

    def test_no_summaries_errors(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SystemExit):
            check_bench.main(["--baseline-dir", str(tmp_path),
                              "--current-dir", str(tmp_path / "empty")])


def swarm_payload(raptor_p99=0.18, lt_p50=0.19):
    return {"results": [
        {"case": "mobile-traces", "overhead_p50": lt_p50},
        {"case": "raptor-traces", "overhead_p99": raptor_p99},
    ]}


class TestCrossCase:
    def test_holding_claim_passes(self):
        assert check_bench.check_cross_cases(
            "BENCH_swarm.json", swarm_payload()) == []

    def test_raptor_p99_above_lt_median_fails(self):
        regressions = check_bench.check_cross_cases(
            "BENCH_swarm.json", swarm_payload(raptor_p99=0.25))
        assert len(regressions) == 1
        assert "undercut the LT median" in str(regressions[0])
        assert "raptor-traces" in str(regressions[0])

    def test_rules_only_fire_for_their_file(self):
        # The same payload under another name carries no raptor claim.
        assert check_bench.check_cross_cases(
            "BENCH_other.json", swarm_payload(raptor_p99=0.9)) == []

    def test_missing_case_or_metric_fails(self):
        gone = {"results": [{"case": "mobile-traces", "overhead_p50": 0.2}]}
        regressions = check_bench.check_cross_cases(
            "BENCH_swarm.json", gone)
        assert len(regressions) == 1
        assert "cross-case rule needs this metric" in str(regressions[0])

        unmetric = swarm_payload()
        del unmetric["results"][0]["overhead_p50"]
        assert len(check_bench.check_cross_cases(
            "BENCH_swarm.json", unmetric)) == 1

    def test_decode_throughput_ratio_fails_on_collapse(self):
        payload = {"results": [
            {"case": "raw-lt-k128", "decode_MBps_vectorized": 20.0,
             "decode_MBps_reference": 8.0,
             "encode_MBps_vectorized": 100.0},
            {"case": "raw-raptor-k128", "decode_MBps_vectorized": 1.0,
             "decode_MBps_reference": 4.0,
             "encode_MBps_vectorized": 80.0},
        ]}
        regressions = check_bench.check_cross_cases(
            "BENCH_transfer.json", payload)
        assert len(regressions) == 1
        assert "vectorized backend" in str(regressions[0])

    def test_raptor_encode_ratio_fails_on_collapse(self):
        payload = {"results": [
            {"case": "raw-lt-k128", "decode_MBps_vectorized": 20.0,
             "decode_MBps_reference": 8.0,
             "encode_MBps_vectorized": 100.0},
            {"case": "raw-raptor-k128", "decode_MBps_vectorized": 10.0,
             "decode_MBps_reference": 4.0,
             "encode_MBps_vectorized": 30.0},
        ]}
        regressions = check_bench.check_cross_cases(
            "BENCH_transfer.json", payload)
        assert len(regressions) == 1
        assert "LT/2" in str(regressions[0])

    def test_case_floor_holds_and_fails(self):
        def transfer_payload(b1_speedup, raptor_mbps):
            return {"results": [
                {"case": "ingest-lt-k128-b1",
                 "ingest_speedup": b1_speedup},
                {"case": "raptor-bk128",
                 "throughput_MBps": raptor_mbps},
            ]}

        assert check_bench.check_case_floors(
            "BENCH_transfer.json", transfer_payload(1.4, 22.0)) == []
        regressions = check_bench.check_case_floors(
            "BENCH_transfer.json", transfer_payload(0.8, 22.0))
        assert len(regressions) == 1
        assert "batch-size-1" in str(regressions[0])
        regressions = check_bench.check_case_floors(
            "BENCH_transfer.json", transfer_payload(1.4, 12.0))
        assert len(regressions) == 1
        assert "cached-solve-plan" in str(regressions[0])
        # Floors are file-scoped, like the cross-case rules.
        assert check_bench.check_case_floors(
            "BENCH_other.json", transfer_payload(0.1, 0.1)) == []

    def test_case_floor_missing_metric_fails(self):
        payload = {"results": [{"case": "raptor-bk128", "seconds": 0.02}]}
        regressions = check_bench.check_case_floors(
            "BENCH_transfer.json", payload)
        assert len(regressions) == 2
        assert any("case floor needs this metric" in str(r)
                   for r in regressions)

    def test_cross_case_violation_fails_main(self, tmp_path, capsys):
        base_dir = tmp_path / "baseline"
        cur_dir = tmp_path / "current"
        base_dir.mkdir()
        cur_dir.mkdir()
        (base_dir / "BENCH_swarm.json").write_text(
            json.dumps(swarm_payload(raptor_p99=0.25)))
        (cur_dir / "BENCH_swarm.json").write_text(
            json.dumps(swarm_payload(raptor_p99=0.25)))
        # Identical baseline and current — only the cross-case claim
        # itself can (and must) fail the gate.
        assert check_bench.main(
            ["--baseline-dir", str(base_dir),
             "--current-dir", str(cur_dir)]) == 1
        assert "undercut the LT median" in capsys.readouterr().out


class TestAgainstCommittedBaselines:
    def test_committed_baselines_self_compare(self, capsys):
        """Every committed BENCH_*.json passes against itself via the
        directory path (sanity for the schemas the gate expects)."""
        root = check_bench.REPO_ROOT
        if not list(root.glob("BENCH_*.json")):
            pytest.skip("no committed benchmark summaries")
        assert check_bench.main(["--baseline-dir", str(root),
                                 "--current-dir", str(root)]) == 0
