"""Property tests for the packed-lane and GF table primitives.

These are the axioms the vectorized kernels lean on: uint64 lane
packing must round-trip any byte block (odd widths included), XOR
through packed lanes must equal byte-level XOR and keep its group
structure, and the log/exp table kernels must agree with the scalar
field on *every* operand pair.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.gf.gf256 import GF256
from repro.utils.packed import LANE_BYTES, pack_rows, unpack_rows, xor_view

#: shapes small enough to explore densely but covering every tail-lane
#: residue (width % 8 in 0..7) and the empty edges.
_rows = st.integers(min_value=0, max_value=6)
_width = st.integers(min_value=0, max_value=41)
_seed = st.integers(min_value=0, max_value=2**32 - 1)


def _block(rows: int, width: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(rows, width), dtype=np.uint8)


def _bytes_xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class TestPackRoundTrip:
    @given(_rows, _width, _seed)
    @settings(max_examples=120, deadline=None)
    def test_pack_unpack_roundtrip(self, rows, width, seed):
        block = _block(rows, width, seed)
        packed, w = pack_rows(block)
        assert w == width
        assert packed.dtype == np.uint64
        assert packed.shape == (rows, -(-width // LANE_BYTES))
        assert np.array_equal(unpack_rows(packed, w), block)

    @given(_rows, _width, _seed)
    @settings(max_examples=60, deadline=None)
    def test_tail_lane_is_zero_padded(self, rows, width, seed):
        packed, _ = pack_rows(_block(rows, width, seed))
        raw = packed.view(np.uint8)
        assert np.all(raw[:, width:] == 0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ParameterError):
            pack_rows(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ParameterError):
            unpack_rows(np.zeros((2, 2), dtype=np.uint64), width=17)


class TestPackedXor:
    @given(_rows, _width, _seed)
    @settings(max_examples=120, deadline=None)
    def test_lane_xor_equals_byte_xor(self, rows, width, seed):
        a = _block(rows, width, seed)
        b = _block(rows, width, seed + 1)
        pa, _ = pack_rows(a)
        pb, _ = pack_rows(b)
        via_lanes = unpack_rows(pa ^ pb, width)
        for i in range(rows):
            assert via_lanes[i].tobytes() == _bytes_xor(a[i].tobytes(),
                                                        b[i].tobytes())

    @given(_rows, _width, _seed)
    @settings(max_examples=60, deadline=None)
    def test_xor_commutes_and_associates(self, rows, width, seed):
        pa, _ = pack_rows(_block(rows, width, seed))
        pb, _ = pack_rows(_block(rows, width, seed + 1))
        pc, _ = pack_rows(_block(rows, width, seed + 2))
        assert np.array_equal(pa ^ pb, pb ^ pa)
        assert np.array_equal((pa ^ pb) ^ pc, pa ^ (pb ^ pc))
        assert np.array_equal(pa ^ pa, np.zeros_like(pa))

    @given(_rows, _width, _seed)
    @settings(max_examples=60, deadline=None)
    def test_xor_view_aliases_the_block(self, rows, width, seed):
        block = _block(rows, width, seed)
        other = _block(rows, width, seed + 1)
        expect = block ^ other
        view = xor_view(block)
        view ^= xor_view(other)
        assert np.array_equal(block, expect)
        if width and width % LANE_BYTES == 0:
            assert view.dtype == np.uint64


class TestGF256Tables:
    def test_mul_matches_scalar_all_pairs(self):
        """The vectorized product agrees with the scalar field on all
        256 x 256 operand pairs, zero rows/columns included."""
        a = np.repeat(np.arange(256), 256).astype(np.uint8)
        b = np.tile(np.arange(256), 256).astype(np.uint8)
        scalar = np.array([GF256.mul(int(x), int(y))
                           for x, y in zip(a, b)], dtype=np.uint8)
        assert np.array_equal(GF256.mul_vec(a, b), scalar)
        # the sentinel-table kernel (no masking pass) used by the
        # vectorized matvec must agree too
        sentinel = GF256._exp_z[GF256._log_z[a.astype(np.int64)]
                                + GF256._log_z[b.astype(np.int64)]]
        assert np.array_equal(sentinel, scalar)

    def test_div_matches_scalar_all_pairs(self):
        a = np.repeat(np.arange(256), 255).astype(np.uint8)
        b = np.tile(np.arange(1, 256), 256).astype(np.uint8)
        scalar = np.array([GF256.div(int(x), int(y))
                           for x, y in zip(a, b)], dtype=np.uint8)
        assert np.array_equal(GF256.div_vec(a, b), scalar)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_div_inverts_mul(self, a, b):
        assert GF256.div(GF256.mul(a, b), b) == a

    def test_exp_z_tail_is_zero(self):
        """Any index sum involving the zero sentinel lands on zero."""
        order = GF256.order
        assert GF256._log_z[0] == 2 * order
        assert np.all(GF256._exp_z[2 * (order - 1):] == 0)
