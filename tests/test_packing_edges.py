"""Regression tests for the odd-length packing bug class.

The PR 2 zero-length uint16 reshape bug showed that payload packing
breaks at the edges: widths that do not fill a symbol or uint64 lane,
empty inputs, and tail blocks shorter than a packet.  These tests pin
every ``bytes_to_packets``/payload-reshape call site at those edges so
the vectorized kernels (which lean on lane views) cannot regress them.
"""

import numpy as np
import pytest

from repro.codes.base import bytes_to_packets, packets_to_bytes
from repro.codes.registry import build_code
from repro.errors import ParameterError
from repro.fountain.packets import BlockHeader, EncodingPacket, PacketHeader
from repro.transfer.blocks import BlockPlan


class TestBytesToPackets:
    @pytest.mark.parametrize("packet_size", [1, 3, 7, 8, 13, 64])
    def test_roundtrip_with_padding(self, packet_size):
        data = bytes(range(256)) * 2 + b"tail"
        packets = bytes_to_packets(data, packet_size)
        assert packets.shape[1] == packet_size
        assert packets.shape[0] == -(-len(data) // packet_size)
        assert packets_to_bytes(packets, len(data)) == data
        # the padding itself must be zeros, not garbage
        flat = packets.reshape(-1)
        assert np.all(flat[len(data):] == 0)

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16])
    def test_empty_input_keeps_width(self, dtype):
        packets = bytes_to_packets(b"", 8, dtype=dtype)
        assert packets.shape == (0, 8 // np.dtype(dtype).itemsize)
        assert packets_to_bytes(packets, 0) == b""

    def test_data_shorter_than_one_packet(self):
        packets = bytes_to_packets(b"ab", 16)
        assert packets.shape == (1, 16)
        assert packets_to_bytes(packets, 2) == b"ab"

    def test_odd_size_rejected_for_wide_symbols(self):
        with pytest.raises(ParameterError):
            bytes_to_packets(b"abcdef", 3, dtype=np.uint16)

    def test_nonpositive_packet_size_rejected(self):
        with pytest.raises(ParameterError):
            bytes_to_packets(b"abc", 0)


class TestBlockPlanTails:
    @pytest.mark.parametrize("file_size", [1, 36, 37, 37 * 16, 37 * 16 + 1,
                                           37 * 16 * 3 - 5])
    def test_slice_reassemble_roundtrip(self, file_size):
        """Odd packet size, partial tail blocks, sub-packet files."""
        plan = BlockPlan(file_size, packet_size=37, block_packets=16)
        rng = np.random.default_rng(file_size)
        data = rng.integers(0, 256, size=file_size, dtype=np.uint8).tobytes()
        sources = [plan.source_block(data, b) for b in range(plan.num_blocks)]
        for block, src in enumerate(sources):
            assert src.shape == (plan.block_ks[block], 37)
        assert plan.reassemble(sources) == data


class TestPacketSerialization:
    @pytest.mark.parametrize("payload_size", [0, 1, 7, 13])
    def test_wire_roundtrip_odd_payloads(self, payload_size):
        payload = np.arange(payload_size, dtype=np.uint8)
        for header, aware in [
            (PacketHeader(index=3, serial=2), False),
            (BlockHeader(index=3, serial=2, block=1), True),
        ]:
            packet = EncodingPacket(header=header, payload=payload)
            parsed = EncodingPacket.from_bytes(packet.to_bytes(),
                                               block_aware=aware)
            assert parsed.index == 3
            assert np.array_equal(parsed.payload, payload)


class TestCodecOddWidths:
    """Encode/decode straight through each family at widths 1 and 13."""

    @pytest.mark.parametrize("spec,k", [("tornado-b", 24), ("rs", 8)])
    @pytest.mark.parametrize("width", [1, 13])
    def test_fixed_rate_roundtrip(self, spec, k, width):
        code = build_code(spec, k, seed=2)
        src = np.random.default_rng(2).integers(
            0, 256, size=(k, width), dtype=np.uint8)
        encoded = code.encode(src)
        received = {i: encoded[i] for i in range(k, min(2 * k, len(encoded)))}
        received.update({i: encoded[i] for i in range(k // 2)})
        if code.is_decodable(received):
            assert np.array_equal(code.decode(received), src)

    @pytest.mark.parametrize("width", [1, 13])
    def test_lt_droplets_match_single_and_batch(self, width):
        code = build_code("lt", 16, seed=4)
        src = np.random.default_rng(4).integers(
            0, 256, size=(16, width), dtype=np.uint8)
        encoder = code.encoder(src)
        batch = encoder.payload_block(range(40))
        for droplet_id in (0, 7, 39):
            assert np.array_equal(batch[droplet_id],
                                  encoder.droplet_payload(droplet_id))
