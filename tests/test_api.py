"""The repro.api facade: sessions and one-call file transfer."""

import json

import numpy as np
import pytest

from repro import api
from repro.errors import (
    DecodeFailure,
    ParameterError,
    ProtocolError,
    ReproError,
)
from repro.net.channel import LossyChannel
from repro.net.loss import BernoulliLoss


def _random_bytes(n, seed):
    return bytes(np.random.default_rng(seed).integers(0, 256, n,
                                                      dtype=np.uint8))


class TestSessions:
    @pytest.mark.parametrize("spec", ["tornado-b", "lt", "rs"])
    def test_in_memory_round_trip(self, spec):
        data = _random_bytes(60_000, seed=1)
        sender = api.SenderSession(data, code=spec, packet_size=256,
                                   block_size=8_192, seed=7)
        receiver = api.ReceiverSession(sender.manifest())
        assert receiver.code_spec == sender.code_spec
        channel = LossyChannel(BernoulliLoss(0.15), rng=2)
        for packet in channel.transmit(sender.packets()):
            if receiver.receive(packet):
                break
        assert receiver.is_complete
        assert receiver.data() == data
        assert receiver.stats().efficiency > 0.4

    def test_spec_parameters_flow_through_manifest(self):
        data = _random_bytes(5_000, seed=2)
        sender = api.SenderSession(data, code="lt:c=0.05,delta=0.5",
                                   packet_size=128, block_size=2_048)
        manifest = sender.manifest()
        assert manifest["code"] == "lt:c=0.05,delta=0.5"
        receiver = api.ReceiverSession(json.loads(json.dumps(manifest)))
        assert receiver.codec.spec.param_dict == {"c": 0.05, "delta": 0.5}

    def test_empty_object_rejected(self):
        with pytest.raises(ReproError, match="empty"):
            api.SenderSession(b"")

    def test_unknown_spec_rejected(self):
        with pytest.raises(ParameterError, match="registered families"):
            api.SenderSession(b"x" * 100, code="raptorq")

    def test_progress_and_packets_used(self):
        data = _random_bytes(20_000, seed=3)
        sender = api.SenderSession(data, code="tornado-b",
                                   packet_size=256, block_size=4_096)
        receiver = api.ReceiverSession(sender.manifest())
        assert receiver.progress == 0.0
        for packet in sender.packets():
            if receiver.receive(packet):
                break
        assert receiver.progress == 1.0
        assert receiver.packets_used >= sender.total_k


class TestSendReceiveFiles:
    @pytest.mark.parametrize("spec", ["tornado-b", "lt", "rs"])
    def test_megabyte_at_20_percent_loss(self, tmp_path, spec):
        """Acceptance: >= 1 MiB, 20% loss, byte-exact, spec strings only."""
        blob = _random_bytes(1_100_000, seed=41)
        src = tmp_path / "big.bin"
        src.write_bytes(blob)
        out = tmp_path / "out"
        # rs blocks stay within GF(2^8): at most 128 packets per block.
        block_size = 128 * 1024 if spec == "rs" else 256 * 1024
        report = api.send_file(src, out, code=spec, loss=0.2, extra=8,
                               block_size=block_size, seed=5)
        assert report.code_spec == spec
        assert report.survivors >= report.total_k
        assert (out / api.STREAM_NAME).exists()
        back = tmp_path / "back.bin"
        received = api.receive_stream(out, back)
        assert back.read_bytes() == blob
        assert received.data == blob
        assert received.code_spec == spec
        assert received.file_name == "big.bin"

    def test_manifest_contents(self, tmp_path):
        src = tmp_path / "f.bin"
        src.write_bytes(_random_bytes(30_000, seed=6))
        report = api.send_file(src, tmp_path / "out", code="tornado-b",
                               block_size=8_192)
        manifest = json.loads(
            (tmp_path / "out" / api.MANIFEST_NAME).read_text())
        assert manifest["kind"] == "transfer"
        assert manifest["code"] == "tornado-b"
        assert manifest["file_name"] == "f.bin"
        assert manifest["packets_written"] == report.survivors

    def test_too_lossy_channel_raises_and_drops_manifest(self, tmp_path):
        src = tmp_path / "f.bin"
        src.write_bytes(_random_bytes(20_000, seed=7))
        out = tmp_path / "out"
        api.send_file(src, out, block_size=4_096)
        with pytest.raises(ReproError, match="too lossy"):
            api.send_file(src, out, block_size=4_096, loss=0.999)
        assert not (out / api.MANIFEST_NAME).exists()

    def test_receive_requires_manifest(self, tmp_path):
        with pytest.raises(ProtocolError, match="manifest"):
            api.receive_stream(tmp_path)

    def test_truncated_stream_detected(self, tmp_path):
        src = tmp_path / "f.bin"
        src.write_bytes(_random_bytes(20_000, seed=8))
        out = tmp_path / "out"
        api.send_file(src, out, block_size=4_096, packet_size=500)
        stream = out / api.STREAM_NAME
        stream.write_bytes(stream.read_bytes()[:-7])
        with pytest.raises(ReproError, match="record"):
            api.receive_stream(out)

    def test_insufficient_stream_raises_decode_failure(self, tmp_path):
        src = tmp_path / "f.bin"
        src.write_bytes(_random_bytes(20_000, seed=9))
        out = tmp_path / "out"
        api.send_file(src, out, block_size=4_096, packet_size=500)
        stream = out / api.STREAM_NAME
        raw = stream.read_bytes()
        record = 500 + 16
        stream.write_bytes(raw[: (len(raw) // record // 2) * record])
        with pytest.raises(DecodeFailure, match="not enough"):
            api.receive_stream(out)

    def test_report_overhead(self, tmp_path):
        src = tmp_path / "f.bin"
        src.write_bytes(_random_bytes(50_000, seed=10))
        report = api.send_file(src, tmp_path / "out", code="lt",
                               block_size=16_384, loss=0.1)
        assert report.reception_overhead == pytest.approx(
            report.survivors / report.total_k - 1)
        assert report.sent >= report.survivors


class TestTopLevelExports:
    def test_facade_reachable_from_repro(self):
        import repro

        assert repro.send_file is api.send_file
        assert repro.receive_stream is api.receive_stream
        assert repro.SenderSession is api.SenderSession
        assert repro.ReceiverSession is api.ReceiverSession
