"""Block-segmented bulk transfer: plan, codec, schedules, server, client,
sim scenario, and the `repro send`/`repro recv` CLI end to end."""

import itertools
import json
import pathlib

import numpy as np
import pytest

from repro.errors import DecodeFailure, ParameterError, ProtocolError
from repro.fountain.packets import (
    BLOCK_HEADER_SIZE,
    HEADER_SIZE,
    BlockHeader,
    EncodingPacket,
    PacketHeader,
)
from repro.net.channel import LossyChannel
from repro.net.loss import BernoulliLoss
from repro.sim.transfer import compare_schedules, simulate_transfer
from repro.transfer import (
    BlockPlan,
    ObjectCodec,
    TransferClient,
    TransferServer,
    block_seed,
    interleaved_slots,
    make_schedule,
    sequential_slots,
)


def _random_bytes(size, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, size=size, dtype=np.uint8).tobytes()


class TestBlockPlan:
    def test_even_partition(self):
        plan = BlockPlan(file_size=4096, packet_size=64, block_packets=16)
        assert plan.num_blocks == 4
        assert plan.block_ks == [16, 16, 16, 16]
        assert plan.total_packets == 64
        assert [s.byte_offset for s in plan.blocks] == [0, 1024, 2048, 3072]
        assert all(s.byte_length == 1024 for s in plan.blocks)

    def test_uneven_tail(self):
        plan = BlockPlan(file_size=5000, packet_size=64, block_packets=16)
        assert plan.num_blocks == 5
        # 5000 bytes = 4 full 1024-byte blocks + 904-byte tail (15 packets,
        # last one partially filled).
        assert plan.block_ks == [16, 16, 16, 16, 15]
        assert plan.blocks[-1].byte_length == 5000 - 4 * 1024
        assert plan.blocks[-1].byte_end == 5000

    def test_single_block_plan(self):
        plan = BlockPlan(file_size=100, packet_size=64, block_packets=16)
        assert plan.num_blocks == 1
        assert plan.block_ks == [2]

    def test_from_block_size(self):
        plan = BlockPlan.from_block_size(10_000, packet_size=100,
                                         block_size=1000)
        assert plan.block_packets == 10
        with pytest.raises(ParameterError):
            BlockPlan.from_block_size(10_000, packet_size=100, block_size=50)

    def test_validation(self):
        with pytest.raises(ParameterError):
            BlockPlan(0, 64, 16)
        with pytest.raises(ParameterError):
            BlockPlan(100, 0, 16)
        with pytest.raises(ParameterError):
            BlockPlan(100, 64, 0)
        plan = BlockPlan(100, 64, 4)
        with pytest.raises(ParameterError):
            plan.spec(1)

    def test_slice_and_reassemble_roundtrip(self):
        data = _random_bytes(5000, seed=1)
        plan = BlockPlan(len(data), packet_size=64, block_packets=16)
        assert b"".join(plan.slice_bytes(data, b)
                        for b in range(plan.num_blocks)) == data
        sources = [plan.source_block(data, b)
                   for b in range(plan.num_blocks)]
        assert all(src.shape == (plan.blocks[b].k, 64)
                   for b, src in enumerate(sources))
        assert plan.reassemble(sources) == data

    def test_reassemble_validates_shapes(self):
        data = _random_bytes(5000, seed=2)
        plan = BlockPlan(len(data), packet_size=64, block_packets=16)
        with pytest.raises(ParameterError):
            plan.reassemble([plan.source_block(data, 0)])


class TestObjectCodec:
    def test_block_seeds_distinct(self):
        seeds = {block_seed(7, b) for b in range(1000)}
        assert len(seeds) == 1000

    def test_per_block_codes_match_tail(self):
        plan = BlockPlan(5000, 64, 16)
        codec = ObjectCodec(plan, code="tornado-b", seed=3)
        for b in range(plan.num_blocks):
            assert codec.code_for(b).k == plan.blocks[b].k
        # cached: same object back
        assert codec.code_for(0) is codec.code_for(0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ParameterError):
            ObjectCodec(BlockPlan(100, 10, 4), code="raptorq")

    def test_family_kwarg_removed(self):
        """The pre-registry alias finished its deprecation cycle: the
        modern code= kwarg is the only spelling left."""
        with pytest.raises(TypeError):
            ObjectCodec(BlockPlan(100, 10, 4), family="raptor")

    def test_family_alias_tables_removed(self):
        """CODE_FAMILIES / RATELESS_FAMILIES shims are gone; the
        registry is the one lookup surface."""
        import repro.transfer as transfer
        import repro.transfer.codec as codec_module

        for module in (transfer, codec_module):
            with pytest.raises(AttributeError):
                module.CODE_FAMILIES
            with pytest.raises(AttributeError):
                module.RATELESS_FAMILIES

    def test_rateless_has_no_finite_encoding(self):
        codec = ObjectCodec(BlockPlan(1000, 10, 10), code="lt")
        assert codec.is_rateless
        with pytest.raises(ParameterError):
            codec.encode_block(_random_bytes(1000, 3), 0)

    def test_manifest_roundtrip(self):
        plan = BlockPlan(5000, 64, 16)
        codec = ObjectCodec(plan, code="lt", seed=11)
        manifest = codec.to_manifest(file_name="x.bin")
        assert manifest["block_header"] is True
        rebuilt = ObjectCodec.from_manifest(json.loads(json.dumps(manifest)))
        assert rebuilt.family == "lt"
        assert rebuilt.seed == 11
        assert rebuilt.plan.block_ks == plan.block_ks
        assert rebuilt.plan.file_size == plan.file_size

    def test_manifest_kind_checked(self):
        with pytest.raises(ProtocolError):
            ObjectCodec.from_manifest({"kind": "shards"})

    def test_wide_symbol_rs_blocks_fail_fast(self):
        """rs blocks beyond 128 packets need GF(2^16) symbols the byte
        wire cannot carry; the codec must refuse instead of writing a
        corrupt stream (sender and payload-mode receiver paths)."""
        data = _random_bytes(200 * 100, 7)
        plan = BlockPlan(len(data), 100, 200)  # one block, k=200, n=400
        codec = ObjectCodec(plan, code="rs", seed=1)
        with pytest.raises(ParameterError, match="wider than one byte"):
            codec.encode_block(data, 0)
        client = TransferClient(codec)  # payload mode
        with pytest.raises(ParameterError, match="wider than one byte"):
            client.receive_index(0, 0, np.zeros(100, dtype=np.uint8))
        # Structural (index-only) simulation stays allowed.
        shadow = TransferClient(codec, payload_size=None)
        assert shadow.receive_index(0, 0) is False

    def test_narrow_rs_blocks_unaffected_by_wire_guard(self):
        plan = BlockPlan(1000, 100, 10)  # k=10 per block, GF(2^8)
        codec = ObjectCodec(plan, code="rs", seed=1)
        codec.check_wire_dtype(0)  # does not raise


class TestSchedules:
    def test_sequential_visits_blocks_in_order(self):
        slots = list(itertools.islice(sequential_slots([2, 3, 1]), 12))
        assert slots == [0, 0, 1, 1, 1, 2] * 2

    def test_interleave_is_proportional(self):
        ks = [100, 50, 25]
        window = list(itertools.islice(interleaved_slots(ks), 175))
        counts = [window.count(b) for b in range(3)]
        assert counts == ks  # one full revolution is exactly proportional
        # and within any prefix no block is more than ~1 packet off share
        emitted = [0, 0, 0]
        for t, b in enumerate(window, start=1):
            emitted[b] += 1
            for i, k in enumerate(ks):
                assert abs(emitted[i] - t * k / 175) <= 1.5

    def test_interleave_single_block(self):
        assert list(itertools.islice(interleaved_slots([4]), 5)) == [0] * 5

    def test_unknown_schedule(self):
        with pytest.raises(ParameterError):
            make_schedule("zigzag", [1, 2])
        with pytest.raises(ParameterError):
            make_schedule("interleave", [])


class TestBlockHeader:
    def test_roundtrip_and_size(self):
        header = BlockHeader(index=7, serial=9, group=1, block=42)
        packed = header.pack()
        assert len(packed) == BLOCK_HEADER_SIZE == 16
        assert BlockHeader.unpack(packed) == header

    def test_legacy_prefix_byte_compatible(self):
        header = BlockHeader(index=7, serial=9, group=1, block=42)
        assert header.pack()[:HEADER_SIZE] == header.legacy().pack()
        # a legacy parser reading a block header sees the right fields
        legacy = PacketHeader.unpack(header.pack())
        assert (legacy.index, legacy.serial, legacy.group) == (7, 9, 1)

    def test_block_field_range_checked(self):
        with pytest.raises(ProtocolError):
            BlockHeader(0, 0, 0, block=2 ** 32)
        with pytest.raises(ProtocolError):
            BlockHeader.unpack(b"\0" * 15)

    def test_packet_roundtrip_block_aware(self):
        payload = np.arange(20, dtype=np.uint8)
        pkt = EncodingPacket(BlockHeader(3, 4, 0, block=5), payload)
        assert pkt.block == 5
        assert pkt.wire_size == BLOCK_HEADER_SIZE + 20
        restored = EncodingPacket.from_bytes(pkt.to_bytes(), block_aware=True)
        assert restored.header == pkt.header
        assert np.array_equal(restored.payload, payload)

    def test_legacy_header_reports_block_zero(self):
        pkt = EncodingPacket(PacketHeader(3, 4, 0), np.zeros(4, np.uint8))
        assert pkt.block == 0
        assert pkt.wire_size == HEADER_SIZE + 4


class TestTransferEndToEnd:
    @pytest.mark.parametrize("family", ["tornado-b", "lt", "rs"])
    def test_lossy_roundtrip(self, family):
        data = _random_bytes(40_000, seed=4)
        plan = BlockPlan(len(data), packet_size=256, block_packets=32)
        codec = ObjectCodec(plan, code=family, seed=5)
        server = TransferServer(codec, data, seed=6)
        client = TransferClient(codec)
        channel = LossyChannel(BernoulliLoss(0.25), rng=7)
        for packet in channel.transmit(server.packets(100 * codec.total_k)):
            if client.receive(packet):
                break
        assert client.is_complete
        assert client.object_data() == data
        assert client.blocks_complete == plan.num_blocks == 5
        assert client.progress == 1.0

    def test_multi_block_stream_uses_block_headers(self):
        data = _random_bytes(4000, seed=8)
        codec = ObjectCodec(BlockPlan(len(data), 100, 10), seed=9)
        server = TransferServer(codec, data)
        packets = list(server.packets(10))
        assert all(isinstance(p.header, BlockHeader) for p in packets)
        # serials strictly monotone across the whole striped stream
        assert [p.header.serial for p in packets] == list(range(10))
        assert {p.block for p in packets} == set(range(codec.num_blocks))

    def test_single_block_stream_stays_legacy(self):
        data = _random_bytes(900, seed=10)
        codec = ObjectCodec(BlockPlan(len(data), 100, 64), seed=9)
        server = TransferServer(codec, data)
        packet = next(server.packets(1))
        assert isinstance(packet.header, PacketHeader)
        assert packet.header.header_size == HEADER_SIZE

    def test_server_validates_object_size(self):
        codec = ObjectCodec(BlockPlan(1000, 100, 4))
        with pytest.raises(ParameterError):
            TransferServer(codec, b"short")

    def test_server_reset_replays_stream(self):
        data = _random_bytes(4000, seed=12)
        codec = ObjectCodec(BlockPlan(len(data), 100, 10), seed=13)
        server = TransferServer(codec, data)
        first = [(p.block, p.index, p.header.serial)
                 for p in server.packets(20)]
        server.reset()
        again = [(p.block, p.index, p.header.serial)
                 for p in server.packets(20)]
        assert first == again

    def test_client_rejects_alien_block(self):
        codec = ObjectCodec(BlockPlan(1000, 100, 4))
        client = TransferClient(codec)
        with pytest.raises(ProtocolError):
            client.receive_index(block=99, index=0)

    def test_object_data_before_completion_raises(self):
        codec = ObjectCodec(BlockPlan(1000, 100, 4))
        client = TransferClient(codec)
        with pytest.raises(DecodeFailure):
            client.object_data()

    def test_per_block_and_aggregate_stats(self):
        data = _random_bytes(8000, seed=14)
        codec = ObjectCodec(BlockPlan(len(data), 100, 20), seed=15)
        server = TransferServer(codec, data)
        client = TransferClient(codec)
        for packet in server.packets(50 * codec.total_k):
            if client.receive(packet):
                break
        stats = client.stats()
        assert stats.source_packets == codec.total_k == 80
        per_block = [client.block_stats(b) for b in range(codec.num_blocks)]
        assert all(s is not None for s in per_block)
        assert sum(s.total_received for s in per_block) == stats.total_received


class TestTransferSim:
    def test_payload_run_verifies_bytes(self):
        result = simulate_transfer(30_000, packet_size=256, block_packets=32,
                                   family="tornado-b", loss=0.15, seed=21)
        assert result.verified
        assert result.num_blocks == 4
        assert result.packets_received <= result.packets_sent
        assert result.reception_overhead >= 0.0

    def test_structural_matches_geometry(self):
        result = simulate_transfer(200_000, packet_size=1000,
                                   block_packets=50, family="lt",
                                   loss=0.1, seed=22, payloads=False)
        assert not result.verified
        assert result.total_k == 200
        assert result.distinct_received >= result.total_k

    def test_interleave_beats_sequential(self):
        out = compare_schedules(400_000, packet_size=1000, block_packets=50,
                                family="tornado-b", loss=0.1, seed=23)
        assert (out["interleave"].packets_received
                < out["sequential"].packets_received)


class TestTransferCli:
    @pytest.mark.parametrize("family", ["tornado-b", "lt"])
    def test_send_recv_megabyte_over_bernoulli_loss(self, tmp_path, family):
        """Acceptance: >= 1 MiB, 20% Bernoulli loss, byte-exact both families."""
        from repro.cli import main

        blob = _random_bytes(1_100_000, seed=31)
        src = tmp_path / "big.bin"
        src.write_bytes(blob)
        out_dir = tmp_path / f"stream-{family}"
        dest = tmp_path / f"back-{family}.bin"
        assert main(["send", str(src), str(out_dir), "--code", family,
                     "--loss", "0.2", "--block-size", str(256 * 1024),
                     "--extra", "8", "--seed", "5"]) == 0
        assert (out_dir / "stream.pkt").exists()
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["kind"] == "transfer"
        assert manifest["code"] == family
        assert manifest["num_blocks"] == 5
        assert main(["recv", str(out_dir), str(dest)]) == 0
        assert dest.read_bytes() == blob

    def test_recv_rejects_shard_directories(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "manifest.json").write_text(json.dumps({"code": "lt"}))
        assert main(["recv", str(tmp_path), str(tmp_path / "x")]) == 2
        assert "repro decode" in capsys.readouterr().err

    def test_decode_rejects_transfer_directories(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "manifest.json").write_text(json.dumps(
            {"kind": "transfer", "code": "tornado-b"}))
        assert main(["decode", str(tmp_path), str(tmp_path / "x")]) == 2
        assert "repro recv" in capsys.readouterr().err

    def test_failed_send_leaves_no_stale_manifest(self, tmp_path):
        from repro.cli import main

        blob = _random_bytes(40_000, seed=33)
        src = tmp_path / "f.bin"
        src.write_bytes(blob)
        out_dir = tmp_path / "out"
        assert main(["send", str(src), str(out_dir), "--packet-size", "500",
                     "--block-size", "5000"]) == 0
        assert (out_dir / "manifest.json").exists()
        # a re-send that dies on the channel must not leave the old
        # manifest paired with the new stream
        assert main(["send", str(src), str(out_dir), "--packet-size", "500",
                     "--block-size", "5000", "--loss", "0.99"]) == 2
        assert not (out_dir / "manifest.json").exists()

    def test_send_rejects_empty_file(self, tmp_path):
        from repro.cli import main

        empty = tmp_path / "empty"
        empty.write_bytes(b"")
        assert main(["send", str(empty), str(tmp_path / "out")]) == 2

    def test_recv_detects_truncated_stream(self, tmp_path, capsys):
        from repro.cli import main

        blob = _random_bytes(50_000, seed=32)
        src = tmp_path / "f.bin"
        src.write_bytes(blob)
        out_dir = tmp_path / "out"
        assert main(["send", str(src), str(out_dir), "--packet-size", "500",
                     "--block-size", "5000"]) == 0
        stream = out_dir / "stream.pkt"
        stream.write_bytes(stream.read_bytes()[:-7])  # tear mid-record
        assert main(["recv", str(out_dir), str(tmp_path / "y")]) == 2
