"""Experiment runners produce well-formed results at reduced scale."""

import numpy as np
import pytest

from repro.experiments import figure2, figure4, figure5, figure6, figure8
from repro.experiments import table1, table2, table3, table4, table5
from repro.experiments.report import Table, render_series, render_table, seconds


class TestReport:
    def test_render_table_alignment(self):
        table = Table(title="T", header=["a", "bbbb"], rows=[["1", "2"]])
        out = render_table(table)
        assert "T" in out and "bbbb" in out

    def test_render_series(self):
        out = render_series("S", "x", "y", [("s1", [1, 2], [0.5, 0.25])])
        assert "s1" in out and "0.500" in out

    def test_seconds_formatting(self):
        assert seconds(123.4) == "123 s"
        assert seconds(1.5) == "1.50 s"
        assert seconds(0.0015).endswith("ms")
        assert seconds(1e-5).endswith("us")


class TestTableRunners:
    def test_table1(self):
        result = table1.run(k_small=60, k_large=240, payload=64, trials=4)
        assert result.tornado_overhead > 0
        assert result.rs_overhead == pytest.approx(0.0)
        # RS scales worse than Tornado between the two sizes.
        assert result.rs_time_ratio > result.tornado_time_ratio
        out = render_table(table1.build_table(result))
        assert "XOR" in out

    def test_table2_shape_and_extrapolation(self):
        # Sizes above the cap threshold (128), where the cascade exists;
        # below it a Tornado code degenerates to the RS cap and there is
        # deliberately no speed gap.
        result = table2.run(sizes_kb=[384, 768], payload=128, rs_max_kb=384)
        assert result.cells["cauchy"][768].extrapolated
        assert not result.cells["cauchy"][384].extrapolated
        # Tornado beats RS at equal size.
        assert (result.cells["tornado-a"][384].seconds
                < result.cells["cauchy"][384].seconds)
        render_table(table2.build_table(result))

    def test_table3(self):
        result = table3.run(sizes_kb=[384], payload=128, rs_max_kb=384)
        assert (result.cells["tornado-a"][384].seconds
                < result.cells["cauchy"][384].seconds)
        assert result.tornado_packets_used["tornado-a"][384] >= 384
        render_table(table3.build_table(result))

    def test_table4_cell(self):
        # Size must exceed the cap threshold regime: below it a Tornado
        # code degenerates to its RS cap, and with the vectorized RS
        # kernels both sides of the ratio are equal call overhead — the
        # asymptotic speedup the table demonstrates only exists once the
        # cascade is real.
        result = table4.run(sizes_kb=[768], loss_rates=[0.1, 0.5],
                            threshold_trials=10, search_trials=10,
                            payload=64)
        entry_low = result.entries[768][0.1]
        entry_high = result.entries[768][0.5]
        assert entry_low.speedup > 1.0
        # Higher loss forces fewer blocks -> bigger per-block cost.
        assert entry_high.num_blocks <= entry_low.num_blocks
        render_table(table4.build_table(result))

    def test_table5_matches_paper(self):
        matrix, olp, matches = table5.run()
        assert olp and matches
        render_table(table5.build_table(matrix, 4, 8, olp, matches))


class TestFigureRunners:
    def test_figure2(self):
        result = figure2.run(k=300, trials=12, seed=1)
        assert set(result.stats) == {"tornado-a", "tornado-b"}
        a = result.stats["tornado-a"]
        b = result.stats["tornado-b"]
        assert b.mean < a.mean  # B buys lower overhead
        figure2.render(result)

    def test_figure4_shape(self):
        result = figure4.run(k=300, loss_rates=[0.5],
                             receiver_counts=[1, 10, 100],
                             pool_size=30, threshold_trials=15,
                             experiments=20, seed=2)
        curves = result.curves[0.5]
        tornado = curves["tornado-a"]
        inter20 = curves["interleaved k=20"]
        # Tornado's worst case beats small-block interleaving at scale.
        assert tornado[-1].worst > inter20[-1].worst
        figure4.render(result)

    def test_figure5_shape(self):
        result = figure5.run(sizes_kb=[150, 400], loss_rates=[0.5],
                             num_receivers=50, pool_size=25,
                             threshold_trials=12, experiments=10, seed=3)
        per_code = result.values[0.5]
        inter = per_code["interleaved k=20"][0]  # averages per size
        assert inter[1] < inter[0]  # interleaving decays with file size
        figure5.render(result)

    def test_figure6_runs(self):
        result = figure6.run(sizes_kb=[150], num_receivers=12,
                             trace_length=20_000, threshold_trials=8,
                             seed=4)
        assert result.results
        assert 0.05 < result.average_trace_loss < 0.35
        figure6.render(result)

    def test_figure8_shapes(self):
        result = figure8.run(k=300, single_loss_rates=[0.05, 0.65],
                             layered_receivers=4, seed=5)
        low, high = sorted(result.single_layer,
                           key=lambda r: r.observed_loss)
        assert low.distinctness_efficiency == pytest.approx(1.0)
        assert high.distinctness_efficiency < 1.0
        assert all(r.completed for r in result.layered)
        figure8.render(result)
