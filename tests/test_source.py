"""The PacketSource contract, the source registry, and encode-once forks."""

import numpy as np
import pytest

from repro.codes.registry import build_code, incremental_decoder
from repro.errors import ParameterError
from repro.fountain import (
    CarouselServer,
    PacketSource,
    RatelessServer,
    available_sources,
    build_packet_source,
    register_source,
)
from repro.fountain.source import SOURCE_MODES
from repro.protocol import LayeredPacketSource
from repro.transfer import BlockPlan, ObjectCodec, TransferClient, TransferServer


def _source_block(k, payload, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, (k, payload), dtype=np.uint8)


class TestProtocolConformance:
    def test_every_producer_is_a_packet_source(self):
        src = _source_block(32, 64)
        tornado = build_code("tornado-a", 32, seed=1)
        lt = build_code("lt", 32, seed=1)
        carousel = CarouselServer(tornado, tornado.encode(src), seed=2)
        rateless = RatelessServer(lt, src)
        plan = BlockPlan(src.nbytes, packet_size=64, block_packets=16)
        codec = ObjectCodec(plan, code="tornado-b", seed=3)
        transfer = TransferServer(codec, src.tobytes())
        layered = build_packet_source(tornado, src, mode="layered")
        for source in (carousel, rateless, transfer, layered):
            assert isinstance(source, PacketSource), type(source)

    def test_counted_emission_continues_across_calls(self):
        src = _source_block(16, 32)
        lt = build_code("lt", 16, seed=4)
        server = RatelessServer(lt, src)
        first = [p.index for p in server.packets(5)]
        second = [p.index for p in server.packets(5)]
        assert first == list(range(5))
        assert second == list(range(5, 10))
        server.reset()
        assert [p.index for p in server.packets(5)] == first


class TestRegistry:
    def test_default_modes(self):
        assert available_sources() == ["carousel", "layered", "rateless"]

    def test_mode_inferred_from_code(self):
        src = _source_block(24, 32)
        fixed = build_packet_source(build_code("tornado-a", 24, seed=1), src)
        assert isinstance(fixed, CarouselServer)
        rateless = build_packet_source(build_code("lt", 24, seed=1), src)
        assert isinstance(rateless, RatelessServer)

    def test_unknown_mode_lists_registered(self):
        with pytest.raises(ParameterError, match="carousel"):
            build_packet_source(build_code("lt", 8, seed=0),
                                _source_block(8, 16), mode="pigeon")

    def test_mode_code_mismatch(self):
        src = _source_block(8, 16)
        with pytest.raises(ParameterError, match="fixed-rate"):
            build_packet_source(build_code("lt", 8, seed=0), src,
                                mode="carousel")
        with pytest.raises(ParameterError, match="rateless"):
            build_packet_source(build_code("rs", 8, seed=0), src,
                                mode="rateless")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_source("carousel", lambda *a, **kw: None)

    def test_custom_mode_registers_and_builds(self):
        def factory(code, source=None, **options):
            return CarouselServer(code, code.encode(source), seed=9)

        register_source("test-mode", factory)
        try:
            built = build_packet_source(build_code("rs", 8, seed=0),
                                        _source_block(8, 16),
                                        mode="test-mode")
            assert isinstance(built, CarouselServer)
        finally:
            del SOURCE_MODES["test-mode"]

    def test_precomputed_encoding_skips_encode(self):
        code = build_code("tornado-a", 16, seed=5)
        src = _source_block(16, 32)
        encoding = code.encode(src)
        source = build_packet_source(code, encoding=encoding, seed=1)
        decoder = incremental_decoder(code, payload_size=32)
        for packet in source.packets():
            decoder.add_packet(packet.index, packet.payload)
            if decoder.is_complete:
                break
        assert np.array_equal(decoder.source_data(), src)


class TestTransferFork:
    @pytest.fixture
    def setup(self):
        data = bytes(_source_block(1, 40_000, seed=7)[0])
        plan = BlockPlan(len(data), packet_size=500, block_packets=20)
        codec = ObjectCodec(plan, code="tornado-b", seed=11)
        return data, codec

    def test_fork_shares_encodings(self, setup, monkeypatch):
        data, codec = setup
        calls = []
        original = ObjectCodec.block_encoder

        def counting(self, data, block):
            calls.append(block)
            return original(self, data, block)

        monkeypatch.setattr(ObjectCodec, "block_encoder", counting)
        server = TransferServer(codec, data, seed=1)
        encoded_once = len(calls)
        assert encoded_once == codec.num_blocks
        fork = server.fork(seed=2)
        assert len(calls) == encoded_once  # no re-encode
        assert fork is not server

    def test_fork_streams_decode_independently(self, setup):
        data, codec = setup
        server = TransferServer(codec, data, seed=1)
        fork = server.fork(seed=99)
        for source in (server, fork):
            client = TransferClient(codec)
            for packet in source.packets():
                if client.receive(packet):
                    break
            assert client.object_data() == data
        # Different transmission seeds: different carousel permutations.
        server.reset()
        fork.reset()
        first = [p.index for p in server.packets(30)]
        second = [p.index for p in fork.packets(30)]
        assert first != second

    def test_fork_rateless_shares_source_blocks(self):
        data = bytes(_source_block(1, 30_000, seed=3)[0])
        plan = BlockPlan(len(data), packet_size=500, block_packets=20)
        codec = ObjectCodec(plan, code="lt", seed=5)
        server = TransferServer(codec, data, seed=1)
        fork = server.fork()
        assert server._payloads is fork._payloads
        client = TransferClient(codec)
        for packet in fork.packets():
            if client.receive(packet):
                break
        assert client.object_data() == data


class TestLayeredPacketSource:
    @pytest.mark.parametrize("spec", ["tornado-a", "lt", "rs"])
    def test_decodes_over_any_family(self, spec):
        code = build_code(spec, 40, seed=2)
        src = _source_block(40, 32, seed=2)
        source = build_packet_source(code, src, mode="layered", seed=4)
        assert isinstance(source, LayeredPacketSource)
        decoder = incremental_decoder(code, payload_size=32)
        groups = set()
        for packet in source.packets():
            groups.add(packet.header.group)
            decoder.add_packet(packet.index, packet.payload)
            if decoder.is_complete:
                break
        assert np.array_equal(decoder.source_data(), src)
        assert groups  # layer ids ride the header's group field
        assert all(g < source.num_layers for g in groups)

    def test_reset_reproduces_stream(self):
        code = build_code("lt", 24, seed=1)
        src = _source_block(24, 16, seed=1)
        source = build_packet_source(code, src, mode="layered", seed=9)
        first = [(p.index, p.header.serial, p.header.group)
                 for p in source.packets(40)]
        source.reset()
        again = [(p.index, p.header.serial, p.header.group)
                 for p in source.packets(40)]
        assert first == again

    def test_rejects_block_sharing(self):
        code = build_code("lt", 8, seed=0)
        with pytest.raises(ParameterError, match="layered"):
            build_packet_source(code, _source_block(8, 16),
                                mode="layered", block=3)

    def test_fixed_rate_needs_source_or_encoding(self):
        code = build_code("tornado-a", 16, seed=0)
        with pytest.raises(ParameterError, match="source block"):
            build_packet_source(code, mode="layered")
