"""LT rateless codes: soliton pmfs, droplet streams, decode thresholds."""

import math

import numpy as np
import pytest

from repro.codes.lt import (
    DropletSpec,
    LTCode,
    ideal_soliton,
    robust_soliton,
    robust_soliton_normaliser,
    robust_soliton_spike,
)
from repro.errors import DecodeFailure, ParameterError
from repro.fountain import ClientMode, FountainClient, RatelessServer


def random_source(k, payload=24, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, payload), dtype=np.uint8)


class TestSolitonDistributions:
    @pytest.mark.parametrize("k", [1, 2, 10, 100, 1000])
    def test_ideal_sums_to_one(self, k):
        dist = ideal_soliton(k)
        assert math.isclose(sum(dist.probabilities), 1.0, abs_tol=1e-9)

    @pytest.mark.parametrize("k", [1, 2, 10, 100, 1000])
    def test_robust_sums_to_one(self, k):
        dist = robust_soliton(k)
        assert math.isclose(sum(dist.probabilities), 1.0, abs_tol=1e-9)

    def test_ideal_closed_form(self):
        k = 50
        dist = ideal_soliton(k)
        pmf = dict(zip(dist.degrees, dist.probabilities))
        assert math.isclose(pmf[1], 1 / k)
        for d in range(2, k + 1):
            assert math.isclose(pmf[d], 1 / (d * (d - 1)))

    def test_robust_closed_form(self):
        k, c, delta = 100, 0.05, 0.2
        s = c * math.log(k / delta) * math.sqrt(k)
        spike = robust_soliton_spike(k, c, delta)
        assert spike == max(1, min(k, round(k / s)))
        z = robust_soliton_normaliser(k, c, delta)
        dist = robust_soliton(k, c=c, delta=delta)
        pmf = dict(zip(dist.degrees, dist.probabilities))
        # Luby's mu(d) = (rho(d) + tau(d)) / Z, checked at the three
        # regimes: below the spike, at the spike, above the spike.
        assert math.isclose(pmf[1], (1 / k + s / k) / z)
        d = spike // 2
        assert math.isclose(pmf[d], (1 / (d * (d - 1)) + s / (k * d)) / z)
        assert math.isclose(
            pmf[spike],
            (1 / (spike * (spike - 1)) + s * math.log(s / delta) / k) / z)
        d = spike + 1
        assert math.isclose(pmf[d], (1 / (d * (d - 1))) / z)

    def test_robust_average_degree_logarithmic(self):
        assert robust_soliton(100).average_degree < 12
        assert robust_soliton(1000).average_degree < 16

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ideal_soliton(0)
        with pytest.raises(ParameterError):
            robust_soliton(10, delta=1.5)
        with pytest.raises(ParameterError):
            robust_soliton(10, c=-1)


class TestDropletSpec:
    def test_deterministic_across_instances(self):
        a = DropletSpec(200, robust_soliton(200), seed=5)
        b = DropletSpec(200, robust_soliton(200), seed=5)
        for droplet_id in (0, 1, 17, 2**20):
            assert np.array_equal(a.neighbours(droplet_id),
                                  b.neighbours(droplet_id))

    def test_different_seeds_differ(self):
        a = DropletSpec(200, robust_soliton(200), seed=5)
        b = DropletSpec(200, robust_soliton(200), seed=6)
        same = sum(np.array_equal(a.neighbours(i), b.neighbours(i))
                   for i in range(50))
        assert same < 50

    def test_neighbours_distinct_and_in_range(self):
        spec = DropletSpec(100, robust_soliton(100), seed=1)
        for droplet_id in range(200):
            nbrs = spec.neighbours(droplet_id)
            assert len(set(nbrs.tolist())) == nbrs.size
            assert nbrs.min() >= 0 and nbrs.max() < 100

    def test_empirical_degrees_follow_pmf(self):
        k = 100
        spec = DropletSpec(k, robust_soliton(k), seed=3)
        degrees = [spec.degree(i) for i in range(2000)]
        observed_share_deg1 = degrees.count(1) / len(degrees)
        pmf = dict(zip(spec.degree_dist.degrees,
                       spec.degree_dist.probabilities))
        assert abs(observed_share_deg1 - pmf[1]) < 0.02
        assert abs(np.mean(degrees) - spec.average_degree) < 0.5

    def test_degree_support_capped_by_k(self):
        with pytest.raises(ParameterError):
            DropletSpec(10, robust_soliton(100), seed=0)


class TestRoundTrip:
    def test_payload_roundtrip_sequential_droplets(self):
        code = LTCode(150, seed=2)
        src = random_source(150, seed=3)
        enc = code.encode(src, count=190)
        rec = code.decode({i: enc[i] for i in range(190)})
        assert np.array_equal(rec, src)

    def test_payload_roundtrip_sparse_ids(self):
        """Any droplet subset works — ids far apart, out of order."""
        code = LTCode(80, seed=4)
        src = random_source(80, seed=5)
        encoder = code.encoder(src)
        rng = np.random.default_rng(6)
        ids = rng.choice(10**6, size=100, replace=False)
        rec = code.decode({int(i): encoder.droplet_payload(int(i))
                           for i in ids})
        assert np.array_equal(rec, src)

    def test_decode_insufficient_fails(self):
        code = LTCode(100, seed=7)
        src = random_source(100, seed=8)
        enc = code.encode(src, count=120)
        with pytest.raises(DecodeFailure):
            code.decode({i: enc[i] for i in range(60)})

    def test_incremental_matches_batch(self):
        code = LTCode(120, seed=9)
        rng = np.random.default_rng(10)
        order = rng.permutation(600)[:300].tolist()
        needed = code.packets_to_decode(order)
        dec = code.new_decoder()
        for pos, droplet_id in enumerate(order):
            dec.add_packet(droplet_id)
            if dec.is_complete:
                assert pos + 1 == needed
                break
        assert dec.is_complete

    def test_duplicates_counted_not_harmful(self):
        code = LTCode(50, seed=11)
        dec = code.new_decoder()
        assert dec.add_packet(3)
        assert not dec.add_packet(3)
        assert dec.duplicates_seen == 1
        assert dec.packets_added == 1

    def test_k_one(self):
        code = LTCode(1, seed=0)
        src = np.asarray([[9, 8, 7]], dtype=np.uint8)
        enc = code.encode(src, count=2)
        assert np.array_equal(code.decode({1: enc[1]}), src)

    def test_pure_peeling_needs_more_droplets(self):
        """Disabling inactivation reproduces Luby's higher overhead."""
        k = 300
        ml = LTCode(k, seed=12)
        pure = LTCode(k, seed=12, inactivation_limit=0)
        rng = np.random.default_rng(13)
        orders = [rng.permutation(4 * k).tolist() for _ in range(5)]
        ml_needs = np.mean([ml.packets_to_decode(o) for o in orders])
        pure_needs = np.mean([pure.packets_to_decode(o) for o in orders])
        assert ml_needs < pure_needs


class TestAcceptanceOverhead:
    """ISSUE acceptance: <= 1.15k random droplets decode in >= 95% of
    50 seeded trials, for k in {100, 1000}, via the shared engine."""

    @pytest.mark.parametrize("k", [100, 1000])
    def test_decode_within_fifteen_percent_overhead(self, k):
        code = LTCode(k, seed=1)
        budget = int(1.15 * k)
        successes = 0
        for trial in range(50):
            rng = np.random.default_rng(1000 + trial)
            ids = rng.permutation(4 * k)[:budget].tolist()
            decoder = code.new_decoder()
            decoder.add_packets(ids)
            successes += int(decoder.is_complete)
        assert successes >= 48, f"k={k}: only {successes}/50 decoded"

    def test_same_engine_as_tornado(self):
        """Both decoders are the one PeelingEngine, as the issue demands."""
        from repro.codes.lt.decoder import LTDecoder
        from repro.codes.peeling import PeelingEngine
        from repro.codes.tornado.decoder import PeelingDecoder
        assert issubclass(LTDecoder, PeelingEngine)
        assert issubclass(PeelingDecoder, PeelingEngine)


class TestFountainIntegration:
    def test_rateless_server_lossy_channel_roundtrip(self):
        code = LTCode(90, seed=14)
        src = random_source(90, payload=32, seed=15)
        server = RatelessServer(code, src)
        client = FountainClient(code, payload_size=32)
        drop = np.random.default_rng(16)
        for packet in server.packets():
            if drop.random() < 0.4:     # 40% loss: the fountain shrugs
                continue
            if client.receive(packet):
                break
        assert np.array_equal(client.source_data(), src)
        stats = client.stats()
        assert stats.distinctness_efficiency == 1.0
        assert stats.coding_efficiency > 0.7

    def test_statistical_mode_client(self):
        code = LTCode(60, seed=17)
        src = random_source(60, payload=16, seed=18)
        server = RatelessServer(code, src)
        client = FountainClient(code, mode=ClientMode.STATISTICAL,
                                payload_size=16)
        for packet in server.packets(200):
            if client.receive(packet):
                break
        assert client.is_complete
        assert np.array_equal(client.source_data(), src)
        assert client.decode_attempts >= 1

    def test_mirrors_disjoint_ranges_never_collide(self):
        code = LTCode(70, seed=19)
        src = random_source(70, payload=8, seed=20)
        mirrors = [RatelessServer(code, src, start=m * 2**24)
                   for m in range(3)]
        client = FountainClient(code, payload_size=8)
        streams = [m.packets() for m in mirrors]
        done = False
        while not done:
            for stream in streams:
                if client.receive(next(stream)):
                    done = True
                    break
        assert np.array_equal(client.source_data(), src)
        assert client.stats().duplicates == 0

    def test_server_requires_source_for_payload_packets(self):
        code = LTCode(10, seed=21)
        server = RatelessServer(code)
        assert server.index_stream(4).tolist() == [0, 1, 2, 3]
        with pytest.raises(ParameterError):
            next(server.packets(1))

    def test_header_index_carries_droplet_id(self):
        code = LTCode(30, seed=22)
        src = random_source(30, payload=8, seed=23)
        server = RatelessServer(code, src, start=500)
        packets = list(server.packets(3))
        assert [p.index for p in packets] == [500, 501, 502]
        assert [p.header.serial for p in packets] == [0, 1, 2]


class TestCli:
    def test_lt_cli_roundtrip(self, tmp_path):
        from repro.cli import main
        blob = bytes(np.random.default_rng(24).integers(
            0, 256, size=30000, dtype=np.uint8))
        source = tmp_path / "blob.bin"
        source.write_bytes(blob)
        shards = tmp_path / "shards"
        assert main(["lt", "encode", str(source), str(shards),
                     "--packet-size", "256", "--seed", "9",
                     "--overhead", "0.6"]) == 0
        # Lose a quarter of the droplets; the rest still reconstruct.
        for victim in sorted(shards.glob("*.pkt"))[::4]:
            victim.unlink()
        out = tmp_path / "out.bin"
        assert main(["lt", "decode", str(shards), str(out)]) == 0
        assert out.read_bytes() == blob

    def test_lt_cli_sim_and_info(self, capsys):
        from repro.cli import main
        assert main(["lt", "sim", "--k", "80", "--trials", "2",
                     "--seed", "3"]) == 0
        assert main(["lt", "info", "--k", "80"]) == 0
        output = capsys.readouterr().out
        assert "reception overhead" in output
        assert "rateless" in output
