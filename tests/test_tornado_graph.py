"""Tornado cascade construction: degree quotas, layer plans, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.tornado.degree import (
    DegreeDistribution,
    heavy_tail_distribution,
    regular_distribution,
    two_point_distribution,
)
from repro.codes.tornado.graph import (
    _configuration_model,
    _quota_degrees,
    build_cascade,
    plan_layer_sizes,
)
from repro.errors import ParameterError
from repro.utils.rng import ensure_rng


class TestDegreeDistributions:
    def test_heavy_tail_normalised(self):
        dist = heavy_tail_distribution(10)
        assert sum(dist.probabilities) == pytest.approx(1.0)
        assert dist.degrees[0] == 2
        assert dist.degrees[-1] == 11

    def test_heavy_tail_average_close_to_harmonic(self):
        # avg = (D+1)/D * H(D)
        dist = heavy_tail_distribution(20)
        expected = (21 / 20) * sum(1 / j for j in range(1, 21))
        assert dist.average_degree == pytest.approx(expected, rel=1e-9)

    def test_regular(self):
        dist = regular_distribution(3)
        assert dist.average_degree == 3
        assert set(dist.sample(50, 0).tolist()) == {3}

    def test_two_point_edge_fraction(self):
        dist = two_point_distribution(3, 20, 0.30)
        degrees = np.array(dist.degrees, dtype=float)
        probs = np.array(dist.probabilities)
        edge_fractions = degrees * probs / (degrees * probs).sum()
        assert edge_fractions[1] == pytest.approx(0.30)

    def test_truncation(self):
        dist = heavy_tail_distribution(30).truncated(5)
        assert dist.max_degree <= 5
        assert sum(dist.probabilities) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            DegreeDistribution((2, 3), (0.5, 0.4))  # doesn't sum to 1
        with pytest.raises(ParameterError):
            two_point_distribution(3, 3, 0.5)
        with pytest.raises(ParameterError):
            regular_distribution(0)


class TestQuotaDegrees:
    def test_exact_counts(self):
        dist = two_point_distribution(3, 20, 0.30)
        out = _quota_degrees(dist, 1000, ensure_rng(0))
        assert out.size == 1000
        counts = {d: int((out == d).sum()) for d in dist.degrees}
        for d, p in zip(dist.degrees, dist.probabilities):
            assert abs(counts[d] - p * 1000) <= 1

    def test_total_preserved_any_size(self):
        dist = heavy_tail_distribution(8)
        for size in (1, 7, 99):
            assert _quota_degrees(dist, size, ensure_rng(1)).size == size


class TestConfigurationModel:
    def test_edges_within_bounds_and_deduped(self):
        g = _configuration_model(200, 100, two_point_distribution(3, 20, 0.3),
                                 ensure_rng(2))
        assert g.edge_left.min() >= 0 and g.edge_left.max() < 200
        assert g.edge_right.min() >= 0 and g.edge_right.max() < 100
        keys = g.edge_right * 200 + g.edge_left
        assert np.unique(keys).size == keys.size

    def test_every_right_node_covered(self):
        g = _configuration_model(200, 100, regular_distribution(3),
                                 ensure_rng(3))
        assert np.all(g.right_degrees() >= 1)
        assert g.right_indptr[-1] == g.edge_count

    def test_csr_sorted_by_right(self):
        g = _configuration_model(64, 32, regular_distribution(3),
                                 ensure_rng(4))
        assert np.all(np.diff(g.edge_right) >= 0)


class TestLayerPlan:
    def test_stretch_two_exact(self):
        for k in (100, 500, 1000, 1777, 8264):
            sizes, cap = plan_layer_sizes(k, 2.0, 0.5, 128)
            assert sum(sizes) + cap == 2 * k
            assert sizes[0] == k

    def test_small_k_degenerates_to_cap_only(self):
        sizes, cap = plan_layer_sizes(50, 2.0, 0.5, 128)
        assert sizes == [50]
        assert cap == 50

    def test_halving(self):
        sizes, _ = plan_layer_sizes(1024, 2.0, 0.5, 128)
        assert sizes == [1024, 512, 256, 128]

    def test_cap_not_degenerate(self):
        for k in range(129, 400, 17):
            sizes, cap = plan_layer_sizes(k, 2.0, 0.5, 128)
            assert cap >= max(2, sizes[-1] // 2)

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            plan_layer_sizes(0, 2.0, 0.5, 128)
        with pytest.raises(ParameterError):
            plan_layer_sizes(10, 1.0, 0.5, 128)
        with pytest.raises(ParameterError):
            plan_layer_sizes(10, 2.0, 1.5, 128)


class TestCascade:
    def test_deterministic_from_seed(self):
        dist = two_point_distribution(3, 20, 0.3)
        a = build_cascade(300, dist, rng=np.random.default_rng(7))
        b = build_cascade(300, dist, rng=np.random.default_rng(7))
        assert a.layer_sizes == b.layer_sizes
        for ga, gb in zip(a.graphs, b.graphs):
            assert np.array_equal(ga.edge_left, gb.edge_left)
            assert np.array_equal(ga.edge_right, gb.edge_right)

    def test_node_count(self):
        st_ = build_cascade(500, two_point_distribution(3, 20, 0.3), rng=0)
        assert st_.n == 1000
        assert st_.cap_offset + st_.cap_size == st_.n

    def test_cap_members(self):
        st_ = build_cascade(500, two_point_distribution(3, 20, 0.3), rng=0)
        members = st_.cap_member_indices()
        assert members.size == st_.last_layer_size + st_.cap_size
        assert members.max() == st_.n - 1


@given(k=st.integers(min_value=1, max_value=2000),
       stretch=st.sampled_from([1.5, 2.0, 3.0]))
@settings(max_examples=40, deadline=None)
def test_plan_budget_property(k, stretch):
    sizes, cap = plan_layer_sizes(k, stretch, 0.5, 128)
    assert sum(sizes) + cap == int(round(stretch * k))
    assert all(s > 0 for s in sizes)
    assert cap >= 1
