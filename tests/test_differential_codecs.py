"""Differential tests: vectorized backend vs. the reference oracle.

Every registry family is driven through identical seed and loss
realisations under both backends; the observable outputs — encoded
packet bytes, decode success/failure, the exact packet at which the
decoder completes, and the recovered source bytes — must match exactly.
The backend selects an execution strategy only; the bytes on the wire
are the contract.
"""

import numpy as np
import pytest

from repro.codes.backend import active_backend, use_backend
from repro.sim.transfer import simulate_transfer

from tests._oracles import assert_backends_identical, make_source

#: (spec, k) pairs covering every registered family, its parameter
#: variants, and small/odd k values.
FAMILY_CASES = [
    ("tornado-a", 3),
    ("tornado-a", 32),
    ("tornado-a", 129),
    ("tornado-b", 3),
    ("tornado-b", 32),
    ("tornado-b", 129),
    ("lt", 2),
    ("lt", 32),
    ("lt", 100),
    ("lt:c=0.05,delta=0.5", 48),
    ("raptor", 2),
    ("raptor", 32),
    ("raptor", 100),
    ("raptor:eps=0.1,c=0.05,delta=0.5", 48),
    ("rs", 2),
    ("rs", 16),
    ("rs", 60),
    ("rs:construction=vandermonde", 16),
    ("interleaved", 16),
    ("interleaved", 40),
]


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("spec,k", FAMILY_CASES,
                         ids=[f"{s}-k{k}" for s, k in FAMILY_CASES])
def test_backends_identical(spec, k, seed):
    run = assert_backends_identical(spec, k, payload_size=32, seed=seed)
    if run.complete:
        assert run.recovered == make_source(k, 32, seed).tobytes()


@pytest.mark.parametrize("payload_size", [1, 7, 13, 61])
@pytest.mark.parametrize("spec,k", [
    ("tornado-b", 32),
    ("tornado-a", 32),
    ("lt", 32),
    ("raptor", 32),
    ("rs", 16),
    ("interleaved", 16),
], ids=["tornado-b", "tornado-a", "lt", "raptor", "rs", "interleaved"])
def test_odd_payload_sizes(spec, k, payload_size):
    """Widths that do not fill a uint64 lane (and width 1) stay identical."""
    run = assert_backends_identical(spec, k, payload_size=payload_size,
                                    seed=3)
    if run.complete:
        assert run.recovered == make_source(k, payload_size, 3).tobytes()


@pytest.mark.parametrize("spec,k", [("tornado-b", 16), ("lt", 16)])
def test_heavy_loss_failure_is_identical(spec, k):
    """When survivors cannot decode, both backends must agree on that."""
    run = assert_backends_identical(spec, k, payload_size=16, seed=1,
                                    loss=0.95, emissions=k)
    assert not run.complete
    assert run.recovered is None


def _transfer_fingerprint(**kwargs):
    result = simulate_transfer(**kwargs)
    assert result.verified
    return (result.packets_sent, result.packets_received,
            result.distinct_received, result.total_k, result.num_blocks)


@pytest.mark.parametrize("family", ["tornado-b", "lt", "rs"])
@pytest.mark.parametrize("file_size,packet_size,block_packets", [
    # odd packet size with a partial tail block *and* a padded tail packet
    (37 * 16 * 2 + 19, 37, 16),
    # object smaller than one packet: single block, k=1, zero padding
    (11, 37, 16),
], ids=["tail-block", "sub-packet"])
def test_transfer_pipeline_identical(family, file_size, packet_size,
                                     block_packets):
    """Full pipeline (block plan, striping, lossy channel) is identical."""
    kwargs = dict(file_size=file_size, packet_size=packet_size,
                  block_packets=block_packets, family=family,
                  loss=0.2, seed=5)
    with use_backend("reference"):
        reference = _transfer_fingerprint(**kwargs)
    with use_backend("vectorized"):
        vectorized = _transfer_fingerprint(**kwargs)
    assert vectorized == reference


def test_env_selects_backend(monkeypatch):
    """REPRO_CODEC_BACKEND drives selection when no override is installed."""
    monkeypatch.setenv("REPRO_CODEC_BACKEND", "reference")
    assert active_backend() == "reference"
    monkeypatch.setenv("REPRO_CODEC_BACKEND", "vectorized")
    assert active_backend() == "vectorized"
    with use_backend("reference"):
        assert active_backend() == "reference"


def test_backend_never_changes_wire_bytes():
    """Spot check straight from the docs: one spec, both backends."""
    with use_backend("reference"):
        from repro.codes.registry import build_code
        ref = build_code("tornado-b", 64, seed=9).encode(
            make_source(64, 24, 9))
    with use_backend("vectorized"):
        from repro.codes.registry import build_code
        vec = build_code("tornado-b", 64, seed=9).encode(
            make_source(64, 24, 9))
    assert np.array_equal(ref, vec)


# -- raptor solve-plan encode path --------------------------------------------
#
# The cached-plan fast path must emit exactly the bytes the retired
# per-block pre-solve produced — the pre-solve stays in the tree as the
# oracle for these checks (see tests._oracles.raptor_encode_pair).

RAPTOR_PLAN_CASES = [
    ("defaults", 1, {}),
    ("defaults", 2, {}),
    ("defaults", 32, {}),
    ("defaults", 100, {}),
    ("defaults", 128, {}),
    ("weakened", 48, {"eps": 0.1, "c": 0.05, "delta": 0.5}),
]


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
@pytest.mark.parametrize("seed", [0, 7, 23])
@pytest.mark.parametrize(
    "label,k,params", RAPTOR_PLAN_CASES,
    ids=[f"{label}-k{k}" for label, k, _ in RAPTOR_PLAN_CASES])
def test_raptor_plan_matches_presolve(backend, label, k, params, seed):
    from tests._oracles import raptor_encode_pair

    fast, slow = raptor_encode_pair(backend, k, payload_size=32,
                                    seed=seed, **params)
    assert fast == slow


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
@pytest.mark.parametrize("payload_size", [1, 7, 13, 61])
def test_raptor_plan_odd_payload_sizes(backend, payload_size):
    from tests._oracles import raptor_encode_pair

    fast, slow = raptor_encode_pair(backend, 32, payload_size=payload_size,
                                    seed=3)
    assert fast == slow


@pytest.mark.parametrize("seed", [0, 5])
def test_raptor_plan_backends_byte_identical(seed):
    """Both backends replay one plan to the same intermediate bytes."""
    from tests._oracles import raptor_encode_pair

    ref = raptor_encode_pair("reference", 64, payload_size=17, seed=seed)
    vec = raptor_encode_pair("vectorized", 64, payload_size=17, seed=seed)
    assert ref[0] == vec[0]
