"""The central code registry: spec parsing, building, adaptation."""

import numpy as np
import pytest

from repro.codes.lt.code import LTCode
from repro.codes.registry import (
    REGISTRY,
    CodeRegistry,
    CodeSpec,
    ErasureEncoder,
    IncrementalDecoder,
    RatelessEncoder,
    SetDecoder,
    available_codes,
    block_seed,
    build_code,
    incremental_decoder,
    parse_spec,
)
from repro.codes.reed_solomon import ReedSolomonCode
from repro.codes.tornado.code import TornadoCode
from repro.errors import DecodeFailure, ParameterError


class TestSpecParsing:
    def test_bare_family(self):
        spec = parse_spec("tornado-a")
        assert spec.family == "tornado-a"
        assert spec.params == ()
        assert spec.to_string() == "tornado-a"

    def test_parameters(self):
        spec = parse_spec("lt:c=0.03,delta=0.1")
        assert spec.family == "lt"
        assert spec.param_dict == {"c": 0.03, "delta": 0.1}

    def test_value_types(self):
        spec = parse_spec("rs:construction=vandermonde,stretch=1.5")
        assert spec.param_dict == {"construction": "vandermonde",
                                   "stretch": 1.5}
        assert parse_spec("x:n=3").param_dict == {"n": 3}
        assert parse_spec("x:flag=true").param_dict == {"flag": True}

    @pytest.mark.parametrize("text", [
        "tornado-a",
        "lt:c=0.03,delta=0.1",
        "rs:construction=vandermonde,stretch=1.5",
        "lt:delta=0.5,c=0.05",
    ])
    def test_round_trip(self, text):
        spec = parse_spec(text)
        assert parse_spec(spec.to_string()) == spec

    def test_canonical_form_sorts_parameters(self):
        assert (parse_spec("lt:delta=0.1,c=0.03")
                == parse_spec("lt:c=0.03,delta=0.1"))
        assert parse_spec("lt:delta=0.1,c=0.03").to_string() == \
            "lt:c=0.03,delta=0.1"

    def test_parse_accepts_spec_objects(self):
        spec = CodeSpec.make("lt", c=0.05)
        assert parse_spec(spec) is spec

    def test_empty_family_rejected(self):
        with pytest.raises(ParameterError, match="empty code family"):
            parse_spec(":c=1")
        with pytest.raises(ParameterError):
            parse_spec("")

    def test_malformed_parameter_named_in_error(self):
        with pytest.raises(ParameterError, match="c0.03"):
            parse_spec("lt:c0.03")
        with pytest.raises(ParameterError, match="name=value"):
            parse_spec("lt:=3")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            parse_spec("lt:c=1,c=2")

    def test_non_string_rejected(self):
        with pytest.raises(ParameterError, match="must be a string"):
            parse_spec(42)


class TestRegistryBuild:
    def test_default_families_present(self):
        names = [family.name for family in available_codes()]
        for expected in ("tornado-a", "tornado-b", "lt", "rs"):
            assert expected in names

    def test_build_tornado(self):
        code = build_code("tornado-a", 200, seed=3)
        assert isinstance(code, TornadoCode)
        assert code.k == 200 and code.n == 400

    def test_build_lt_with_parameters(self):
        code = build_code("lt:c=0.05,delta=0.5", 100, seed=3)
        assert isinstance(code, LTCode)
        assert code.n is None

    def test_lt_parameters_change_the_distribution(self):
        a = build_code("lt", 200, seed=1)
        b = build_code("lt:c=0.1,delta=0.5", 200, seed=1)
        assert a.degree_dist.probabilities != b.degree_dist.probabilities

    def test_build_rs_constructions(self):
        cauchy = build_code("rs", 50)
        vander = build_code("rs:construction=vandermonde,stretch=1.5", 50)
        assert isinstance(cauchy, ReedSolomonCode)
        assert cauchy.n == 100
        assert vander.construction == "vandermonde"
        assert vander.n == 75

    def test_unknown_family_lists_registered(self):
        with pytest.raises(ParameterError, match="tornado-a"):
            build_code("raptorq", 100)

    def test_unknown_parameter_lists_valid(self):
        with pytest.raises(ParameterError, match="c, delta"):
            build_code("lt:sigma=1", 100)

    def test_unusable_parameter_value_is_a_clean_error(self):
        """A structurally valid spec with a bad value must raise
        ParameterError (CLI exit 2), not a factory TypeError."""
        with pytest.raises(ParameterError, match="lt:c=oops"):
            build_code("lt:c=oops", 100)
        with pytest.raises(ParameterError, match="construction"):
            build_code("rs:construction=weird", 50)

    def test_rateless_flag(self):
        assert REGISTRY.is_rateless("lt")
        assert REGISTRY.is_rateless("lt:c=0.05")
        assert not REGISTRY.is_rateless("tornado-b")
        assert not REGISTRY.is_rateless("rs")

    def test_modes_metadata(self):
        lt = REGISTRY.family("lt")
        assert "rateless" in lt.modes and "layered" in lt.modes
        rs = REGISTRY.family("rs")
        assert "carousel" in rs.modes and "layered" in rs.modes

    def test_parameters_discovered_from_factory(self):
        assert set(REGISTRY.family("lt").parameters()) == {"c", "delta"}
        assert "stretch" in REGISTRY.family("tornado-a").parameters()

    def test_duplicate_registration_rejected(self):
        registry = CodeRegistry()
        registry.register("x", lambda k, seed=0: None)
        with pytest.raises(ParameterError, match="already registered"):
            registry.register("x", lambda k, seed=0: None)

    def test_same_spec_same_seed_reproducible(self):
        a = build_code("lt", 64, seed=9)
        b = build_code("lt", 64, seed=9)
        ids = list(range(80))
        assert a.packets_to_decode(ids) == b.packets_to_decode(ids)

    def test_block_seed_distinct_and_stable(self):
        seeds = {block_seed(7, b) for b in range(1000)}
        assert len(seeds) == 1000
        assert block_seed(7, 0) == block_seed(7, 0)
        assert 0 <= block_seed(2 ** 40, 5) < 2 ** 32


class TestProtocols:
    def test_native_codes_satisfy_protocols(self):
        tornado = build_code("tornado-a", 64, seed=0)
        lt = build_code("lt", 64, seed=0)
        assert isinstance(tornado, ErasureEncoder)
        assert isinstance(tornado.new_decoder(), IncrementalDecoder)
        assert isinstance(lt.new_decoder(), IncrementalDecoder)
        source = np.zeros((64, 8), dtype=np.uint8)
        assert isinstance(lt.encoder(source), RatelessEncoder)

    def test_set_decoder_satisfies_protocol(self):
        code = build_code("rs", 32)
        assert isinstance(incremental_decoder(code), IncrementalDecoder)


class TestIncrementalDecoderDispatch:
    def test_native_decoder_preferred(self):
        code = build_code("tornado-b", 64, seed=1)
        decoder = incremental_decoder(code)
        assert type(decoder).__name__ == "PeelingDecoder"

    def test_rs_gets_set_decoder(self):
        code = build_code("rs", 32)
        decoder = incremental_decoder(code)
        assert isinstance(decoder, SetDecoder)


class TestSetDecoder:
    def test_structural_completion_at_k_distinct(self):
        code = build_code("rs", 32)
        decoder = SetDecoder(code)
        added = decoder.add_packets(range(31))
        assert added == 31 and not decoder.is_complete
        assert decoder.add_packet(40)  # 32nd distinct index: MDS complete
        assert decoder.is_complete
        assert decoder.source_known_count == 32

    def test_duplicates_ignored(self):
        code = build_code("rs", 8)
        decoder = SetDecoder(code)
        assert decoder.add_packets([0, 0, 1, 1]) == 2
        assert decoder.packets_added == 2

    def test_structural_mode_refuses_source_data(self):
        code = build_code("rs", 8)
        decoder = SetDecoder(code)
        decoder.add_packets(range(8))
        assert decoder.is_complete
        with pytest.raises(DecodeFailure, match="structural"):
            decoder.source_data()

    def test_payload_decode_round_trips(self):
        code = build_code("rs", 16)
        rng = np.random.default_rng(0)
        source = rng.integers(0, 256, size=(16, 32), dtype=np.uint8)
        encoding = code.encode(source)
        decoder = SetDecoder(code, payload_size=32)
        # Feed redundancy-heavy subset: half the source packets missing.
        for index in list(range(8)) + list(range(16, 24)):
            decoder.add_packet(index, encoding[index])
        assert decoder.is_complete
        assert np.array_equal(decoder.source_data(), source)

    def test_incomplete_source_data_raises(self):
        code = build_code("rs", 8)
        decoder = SetDecoder(code)
        decoder.add_packets(range(4))
        with pytest.raises(DecodeFailure):
            decoder.source_data()

    def test_wrong_payload_width_rejected(self):
        code = build_code("rs", 8)
        decoder = SetDecoder(code, payload_size=32)
        with pytest.raises(ParameterError, match="32"):
            decoder.add_packet(0, np.zeros(16, dtype=np.uint8))
        with pytest.raises(ParameterError, match="32"):
            decoder.add_packets([1], np.zeros((1, 16), dtype=np.uint8))
