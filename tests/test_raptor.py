"""Raptor subsystem tests: geometry, systematic mapping, two-stage decode.

The load-bearing properties, pinned with Hypothesis over random
``(k, eps, seed)`` tuples:

* **systematic round trip** — droplet ids below ``k`` emit the source
  packets byte-exactly, and a receiver holding any subset of them gets
  those packets back byte-exactly however the rest of the block was
  recovered;
* **geometry agreement** — encoder and decoder derive the identical
  intermediate-block geometry (counts, systematic index, constraint
  rows) from the shared ``(k, params, seed)`` tuple under *both* codec
  backends, so the spec string in a manifest is all the wire needs to
  carry.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.backend import use_backend
from repro.codes.raptor.cache import GeometryPlanCache
from repro.codes.raptor.code import RaptorCode
from repro.codes.raptor.decoder import RaptorDecoder
from repro.codes.raptor.encoder import (
    RaptorEncoder,
    build_encode_plan,
    presolve_intermediates,
)
from repro.codes.raptor.precode import raptor_geometry, weakened_soliton
from repro.codes.registry import build_code
from repro.errors import DecodeFailure, ParameterError

_k = st.integers(min_value=1, max_value=120)
_eps = st.floats(min_value=0.02, max_value=0.5, allow_nan=False)
_seed = st.integers(min_value=0, max_value=2**32 - 1)


def _source(k: int, payload: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, payload), dtype=np.uint8)


class TestGeometry:
    def test_counts_and_systematic_index(self):
        g = raptor_geometry(100, eps=0.05, seed=3)
        assert g.parity_count == math.ceil(0.05 * 100)
        assert g.dense_count >= 2
        assert g.intermediate_count == 100 + g.parity_count + g.dense_count
        # The systematic index is strictly increasing and repair ESIs
        # start right after it — the two id ranges never collide.
        esis = g.systematic_esis
        assert esis.size == 100
        assert (np.diff(esis) > 0).all()
        assert g.repair_base == int(esis[-1]) + 1

    def test_constraint_rows_have_private_parity_columns(self):
        g = raptor_geometry(64, seed=9)
        indptr, flat = g.constraint_rows()
        assert indptr.size - 1 == g.parity_count + g.dense_count
        heads = flat[indptr[:-1]]
        # Each check owns its parity column: the constraint block has
        # full rank r by construction.
        assert sorted(heads.tolist()) == list(
            range(64, g.intermediate_count))

    def test_weakened_distribution_is_capped(self):
        dist = weakened_soliton(2000, 0.05, 0.03, 0.1)
        cap = math.ceil(4 * 1.05 / 0.05)
        assert dist.max_degree == cap + 1
        assert dist.average_degree < 8  # O(1) work per droplet
        # Small blocks degenerate to the (soliton) LT regime where the
        # cap is vacuous and c/delta keep their meaning.
        small = weakened_soliton(40, 0.05, 0.03, 0.1)
        assert small.max_degree <= 40

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            raptor_geometry(0)
        with pytest.raises(ParameterError):
            raptor_geometry(10, eps=0.0)
        with pytest.raises(ParameterError):
            raptor_geometry(10, c=-1.0)
        with pytest.raises(ParameterError):
            raptor_geometry(10, delta=1.0)

    @given(_k, _eps, _seed)
    @settings(max_examples=40, deadline=None)
    def test_geometry_agrees_across_backends(self, k, eps, seed):
        """Encoder and decoder sides — and both codec backends — derive
        one identical geometry from the shared tuple."""
        with use_backend("vectorized"):
            a = raptor_geometry(k, eps=eps, seed=seed)
        with use_backend("reference"):
            b = raptor_geometry(k, eps=eps, seed=seed)
        assert a.intermediate_count == b.intermediate_count
        assert a.parity_count == b.parity_count
        assert a.dense_count == b.dense_count
        np.testing.assert_array_equal(a.systematic_esis, b.systematic_esis)
        for left, right in zip(a.constraint_rows(), b.constraint_rows()):
            np.testing.assert_array_equal(left, right)
        # The decoder's own copy is the same object graph the encoder
        # uses — one source of truth.
        code = RaptorCode(k, eps=eps, seed=seed)
        decoder = code.new_decoder()
        assert decoder.geometry is code.geometry
        assert decoder.spec is code.geometry.spec


class TestSystematicMapping:
    @given(_k, _eps, _seed)
    @settings(max_examples=30, deadline=None)
    def test_ids_below_k_round_trip_byte_exactly(self, k, eps, seed):
        code = RaptorCode(k, eps=eps, seed=seed)
        source = _source(k, 17, seed ^ 0xABCD)
        encoder = code.encoder(source)
        block = encoder.payload_block(list(range(k)))
        np.testing.assert_array_equal(block, source)
        for i in (0, k // 2, k - 1):
            np.testing.assert_array_equal(
                encoder.droplet_payload(i), source[i])

    @given(_k, _seed)
    @settings(max_examples=20, deadline=None)
    def test_loss_free_receiver_skips_the_solver(self, k, seed):
        code = RaptorCode(k, seed=seed)
        source = _source(k, 9, seed ^ 0x5A5A)
        encoder = code.encoder(source)
        decoder = code.new_decoder(payload_size=9)
        decoder.add_packets(list(range(k)), encoder.payload_block(range(k)))
        assert decoder.is_complete
        np.testing.assert_array_equal(decoder.source_data(), source)
        # The engine itself never had to finish: completion came from
        # the verbatim systematic packets alone.
        assert decoder.packets_added == k

    def test_presolve_pins_systematic_rows(self):
        """The intermediate block satisfies both row families: zero
        constraints and source-valued systematic droplet rows."""
        g = raptor_geometry(48, seed=5)
        source = _source(48, 11, 1)
        inter = presolve_intermediates(g, source)
        assert inter.shape == (g.intermediate_count, 11)
        indptr, flat = g.constraint_rows()
        for j in range(indptr.size - 1):
            rows = inter[flat[indptr[j]:indptr[j + 1]]]
            assert not np.bitwise_xor.reduce(rows, axis=0).any()
        for i, esi in enumerate(g.systematic_esis):
            rows = inter[g.spec.neighbours(int(esi))]
            np.testing.assert_array_equal(
                np.bitwise_xor.reduce(rows, axis=0), source[i])


class TestDecoder:
    def test_lossy_decode_byte_exact_and_low_overhead(self):
        code = RaptorCode(64, seed=7)
        source = _source(64, 32, 2)
        encoder = code.encoder(source)
        rng = np.random.default_rng(3)
        ids = [i for i in range(400) if rng.random() > 0.3]
        decoder = code.new_decoder(payload_size=32)
        fed = 0
        for i in ids:
            decoder.add_packet(i, encoder.droplet_payload(i))
            fed += 1
            if decoder.is_complete:
                break
        assert decoder.is_complete
        np.testing.assert_array_equal(decoder.source_data(), source)
        # The Raptor claim: constant small overhead, nothing like the
        # LT coupon-collector threshold.
        assert fed <= math.ceil(1.15 * 64)

    def test_repair_only_decode(self):
        """A receiver that missed every systematic packet still decodes."""
        code = RaptorCode(40, seed=13)
        source = _source(40, 8, 4)
        encoder = code.encoder(source)
        decoder = code.new_decoder(payload_size=8)
        ids = list(range(40, 110))
        decoder.add_packets(ids, encoder.payload_block(ids))
        assert decoder.is_complete
        np.testing.assert_array_equal(decoder.source_data(), source)

    def test_duplicate_and_redundant_accounting(self):
        code = RaptorCode(16, seed=1)
        source = _source(16, 4, 5)
        encoder = code.encoder(source)
        decoder = code.new_decoder(payload_size=4)
        payload = encoder.droplet_payload(0)
        assert decoder.add_packet(0, payload)
        assert not decoder.add_packet(0, payload)
        assert decoder.duplicates_seen == 1
        assert decoder.packets_added == 1

    def test_min_additional_packets_bound(self):
        code = RaptorCode(32, seed=2)
        decoder = code.new_decoder()
        # Fresh decoder: constraints are in, but each droplet can add
        # at most one rank — the bound is exactly k.
        assert decoder.min_additional_packets == 32
        decoder.add_packets(list(range(16)))
        assert decoder.min_additional_packets >= 16
        decoder.add_packets(list(range(16, 40)))
        assert decoder.is_complete
        assert decoder.min_additional_packets == 0

    def test_incomplete_source_data_raises(self):
        code = RaptorCode(24, seed=6)
        decoder = code.new_decoder(payload_size=4)
        source = _source(24, 4, 7)
        encoder = code.encoder(source)
        decoder.add_packet(3, encoder.droplet_payload(3))
        with pytest.raises(DecodeFailure):
            decoder.source_data()
        assert decoder.missing_source_indices().size == 23

    def test_negative_ids_rejected(self):
        decoder = RaptorDecoder(raptor_geometry(8, seed=0))
        with pytest.raises(ParameterError):
            decoder.add_packet(-1)
        with pytest.raises(ParameterError):
            decoder.add_packets([-3])

    def test_structural_threshold_matches_incremental(self):
        code = RaptorCode(48, seed=21)
        rng = np.random.default_rng(11)
        order = [i for i in range(300) if rng.random() > 0.2]
        threshold = code.packets_to_decode(order)
        decoder = code.new_decoder()
        decoder.add_packets(order[:threshold - 1])
        assert not decoder.is_complete
        decoder.add_packet(order[threshold - 1])
        assert decoder.is_complete


class TestRegistryIntegration:
    def test_spec_string_builds_raptor(self):
        code = build_code("raptor:eps=0.1,c=0.05,delta=0.5", 50, seed=3)
        assert isinstance(code, RaptorCode)
        assert code.eps == 0.1 and code.c == 0.05 and code.delta == 0.5
        assert code.n is None  # rateless: no fixed length
        source = _source(50, 8, 9)
        recovered = code.decode(
            {i: p for i, p in zip(range(50, 120),
                                  code.encoder(source).payload_block(
                                      range(50, 120)))})
        np.testing.assert_array_equal(recovered, source)

    def test_encoder_type(self):
        code = build_code("raptor", 20, seed=0)
        assert isinstance(code.encoder(_source(20, 4, 0)), RaptorEncoder)


class TestSolvePlanProperties:
    """Hypothesis: the recorded plan is exactly the engine's solution."""

    @settings(max_examples=12, deadline=None)
    @given(k=st.integers(1, 48),
           payload=st.integers(1, 40),
           geom_seed=st.integers(0, 2 ** 16),
           data_seed=st.integers(0, 2 ** 16))
    def test_plan_apply_equals_engine_solve(self, k, payload, geom_seed,
                                            data_seed):
        geometry = raptor_geometry(k, seed=geom_seed)
        plan = build_encode_plan(geometry)
        rng = np.random.default_rng(data_seed)
        source = rng.integers(0, 256, size=(k, payload), dtype=np.uint8)
        assert np.array_equal(plan.apply(source),
                              presolve_intermediates(geometry, source))

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(1, 40),
           seed=st.integers(0, 2 ** 16),
           delta_k=st.integers(1, 8))
    def test_cache_never_shares_across_specs(self, k, seed, delta_k):
        """Distinct parameter tuples resolve to distinct assets/plans;
        the same tuple resolves to the identical objects."""
        cache = GeometryPlanCache()
        base = cache.get(k, seed=seed)
        again = cache.get(k, seed=seed)
        assert again is base
        assert again.encode_plan() is base.encode_plan()
        other_k = cache.get(k + delta_k, seed=seed)
        other_seed = cache.get(k, seed=seed + 1)
        other_eps = cache.get(k, eps=0.1, seed=seed)
        for other in (other_k, other_seed, other_eps):
            assert other is not base
            assert other.encode_plan() is not base.encode_plan()
        assert other_k.geometry.k == k + delta_k

    def test_cache_eviction_bound_and_counters(self):
        cache = GeometryPlanCache(maxsize=3)
        for k in (4, 5, 6, 7):
            cache.get(k, seed=1)
        stats = cache.stats()
        assert len(cache) == 3
        assert stats["evictions"] == 1
        assert stats["misses"] == 4
        # 4 was evicted (LRU); fetching it again is a miss...
        cache.get(4, seed=1)
        # ...and 7 stayed resident, so this is a hit.
        cache.get(7, seed=1)
        stats = cache.stats()
        assert stats["misses"] == 5
        assert stats["hits"] == 1

    def test_shared_cache_serves_registry_codes(self):
        """Two RaptorCode builds with one spec share geometry and plan."""
        a = RaptorCode(24, seed=99)
        b = RaptorCode(24, seed=99)
        assert a.geometry is b.geometry
        source = np.arange(24 * 8, dtype=np.uint8).reshape(24, 8)
        assert np.array_equal(a.encoder(source).intermediates,
                              b.encoder(source).intermediates)
