"""Packetisation helpers, RNG plumbing, summary statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.base import (
    ReceivedPacket,
    as_packet_block,
    bytes_to_packets,
    packets_to_bytes,
)
from repro.codes.reed_solomon import cauchy_code
from repro.errors import ParameterError
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.stats import summarize


class TestPacketisation:
    @given(data=st.binary(min_size=0, max_size=5000),
           packet_size=st.sampled_from([16, 64, 256, 1024]))
    @settings(max_examples=50)
    def test_roundtrip(self, data, packet_size):
        packets = bytes_to_packets(data, packet_size)
        assert packets.shape[1] == packet_size
        assert packets_to_bytes(packets, len(data)) == data

    def test_padding(self):
        packets = bytes_to_packets(b"abc", 8)
        assert packets.shape == (1, 8)
        assert bytes(packets[0]) == b"abc\0\0\0\0\0"

    def test_uint16_view(self):
        packets = bytes_to_packets(b"abcd" * 8, 16, dtype=np.uint16)
        assert packets.dtype == np.uint16
        assert packets.shape == (2, 8)
        assert packets_to_bytes(packets) == b"abcd" * 8

    def test_odd_packet_size_for_uint16_rejected(self):
        with pytest.raises(ParameterError):
            bytes_to_packets(b"ab", 3, dtype=np.uint16)

    def test_invalid_packet_size(self):
        with pytest.raises(ParameterError):
            bytes_to_packets(b"ab", 0)

    def test_as_packet_block_validates(self):
        with pytest.raises(ParameterError):
            as_packet_block(np.zeros((3, 4)), k=4)
        with pytest.raises(ParameterError):
            as_packet_block(np.zeros(12), k=3)


class TestErasureCodeBase:
    def test_decode_packets_wrapper(self):
        code = cauchy_code(4)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 256, size=(4, 8), dtype=np.uint8)
        enc = code.encode(src)
        packets = [ReceivedPacket(i, enc[i]) for i in (0, 2, 5, 7)]
        assert np.array_equal(code.decode_packets(packets), src)

    def test_generic_packets_to_decode_binary_search(self):
        code = cauchy_code(10)
        order = list(range(code.n))
        assert code.packets_to_decode(order) == 10

    def test_packets_to_decode_never_decodable(self):
        code = cauchy_code(10)
        with pytest.raises(ValueError):
            code.packets_to_decode(list(range(5)))


class TestRng:
    def test_ensure_rng_from_int_deterministic(self):
        a = ensure_rng(5).integers(0, 100, 10)
        b = ensure_rng(5).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")

    def test_spawn_streams_independent_and_deterministic(self):
        a1 = spawn_rng(7, 1).integers(0, 1000, 5)
        a2 = spawn_rng(7, 1).integers(0, 1000, 5)
        b = spawn_rng(7, 2).integers(0, 1000, 5)
        assert np.array_equal(a1, a2)
        assert not np.array_equal(a1, b)


class TestStats:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                           min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_bounds_property(self, values):
        stats = summarize(values)
        tolerance = 1e-9 * (abs(stats.minimum) + abs(stats.maximum) + 1)
        assert stats.minimum - tolerance <= stats.mean \
            <= stats.maximum + tolerance
