"""TornadoCode end-to-end: encode/decode correctness and decoder behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.tornado.code import TornadoCode
from repro.codes.tornado.degree import two_point_distribution
from repro.codes.tornado.presets import tornado_a, tornado_b
from repro.errors import DecodeFailure, ParameterError


def encode_random(code, payload=32, seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 256, size=(code.k, payload), dtype=np.uint8)
    return src, code.encode(src)


class TestEncoding:
    def test_systematic_prefix(self):
        code = tornado_a(200, seed=1)
        src, enc = encode_random(code)
        assert np.array_equal(enc[:200], src)

    def test_encoding_consistency_with_structure(self):
        """Every graph equation holds on the encoder's output."""
        code = tornado_a(300, seed=2)
        src, enc = encode_random(code, seed=3)
        st_ = code.structure
        for gi, graph in enumerate(st_.graphs):
            left = enc[st_.layer_offsets[gi]:
                       st_.layer_offsets[gi] + st_.layer_sizes[gi]]
            right = enc[st_.layer_offsets[gi + 1]:
                        st_.layer_offsets[gi + 1] + graph.right_size]
            for r in range(graph.right_size):
                lo, hi = graph.right_indptr[r], graph.right_indptr[r + 1]
                expect = np.bitwise_xor.reduce(
                    left[graph.edge_left[lo:hi]], axis=0)
                assert np.array_equal(right[r], expect), f"graph {gi} node {r}"

    def test_cap_is_rs_encoding_of_last_layer(self):
        code = tornado_a(300, seed=2)
        src, enc = encode_random(code, seed=4)
        st_ = code.structure
        last = enc[st_.last_layer_offset:
                   st_.last_layer_offset + st_.last_layer_size]
        full = st_.cap_code.encode(last.view(st_.cap_code.field.dtype))
        cap = full[st_.last_layer_size:].view(np.uint8)
        assert np.array_equal(enc[st_.cap_offset:], cap)

    def test_sender_receiver_same_seed_same_code(self):
        a = tornado_a(250, seed=42)
        b = tornado_a(250, seed=42)
        src, enc = encode_random(a, seed=5)
        assert np.array_equal(b.encode(src), enc)


class TestDecoding:
    @pytest.mark.parametrize("preset", [tornado_a, tornado_b],
                             ids=["A", "B"])
    def test_roundtrip_at_threshold(self, preset):
        code = preset(400, seed=6)
        src, enc = encode_random(code, seed=7)
        rng = np.random.default_rng(8)
        order = rng.permutation(code.n)
        needed = code.packets_to_decode(order)
        rec = code.decode({int(i): enc[i] for i in order[:needed]})
        assert np.array_equal(rec, src)

    def test_decode_below_threshold_fails(self):
        code = tornado_a(400, seed=6)
        src, enc = encode_random(code, seed=9)
        rng = np.random.default_rng(10)
        order = rng.permutation(code.n)
        needed = code.packets_to_decode(order)
        with pytest.raises(DecodeFailure):
            code.decode({int(i): enc[i] for i in order[:needed - 1]})

    def test_decode_everything(self):
        code = tornado_a(300, seed=11)
        src, enc = encode_random(code, seed=12)
        rec = code.decode({i: enc[i] for i in range(code.n)})
        assert np.array_equal(rec, src)

    def test_decode_source_only(self):
        code = tornado_a(300, seed=11)
        src, enc = encode_random(code, seed=13)
        rec = code.decode({i: enc[i] for i in range(code.k)})
        assert np.array_equal(rec, src)

    def test_structural_matches_payload_decodability(self):
        code = tornado_a(200, seed=14)
        src, enc = encode_random(code, seed=15)
        rng = np.random.default_rng(16)
        for trial in range(5):
            count = rng.integers(code.k, code.n)
            keep = rng.permutation(code.n)[:count]
            structural = code.is_decodable(keep)
            try:
                rec = code.decode({int(i): enc[i] for i in keep})
                payload_ok = np.array_equal(rec, src)
            except DecodeFailure:
                payload_ok = False
            assert structural == payload_ok

    def test_monotone_decodability(self):
        """Adding packets never breaks decodability."""
        code = tornado_a(150, seed=17)
        rng = np.random.default_rng(18)
        order = rng.permutation(code.n)
        needed = code.packets_to_decode(order)
        assert code.is_decodable(order[:needed])
        assert code.is_decodable(order[:needed + 10])
        assert not code.is_decodable(order[:code.k - 1])

    def test_incremental_matches_batch(self):
        code = tornado_a(150, seed=19)
        rng = np.random.default_rng(20)
        order = rng.permutation(code.n)
        needed = code.packets_to_decode(order)
        dec = code.new_decoder()
        for pos, idx in enumerate(order):
            dec.add_packet(int(idx))
            if dec.is_complete:
                assert pos + 1 == needed
                break
        assert dec.is_complete

    def test_duplicates_counted_not_harmful(self):
        code = tornado_a(150, seed=21)
        dec = code.new_decoder()
        dec.add_packet(0)
        assert not dec.add_packet(0)
        assert dec.duplicates_seen == 1
        assert dec.packets_added == 1


class TestInactivation:
    def test_b_needs_fewer_packets_than_a(self):
        rng = np.random.default_rng(22)
        a = tornado_a(600, seed=23)
        b = tornado_b(600, seed=23)
        orders = [rng.permutation(a.n) for _ in range(5)]
        a_needs = np.mean([a.packets_to_decode(o) for o in orders])
        b_needs = np.mean([b.packets_to_decode(o) for o in orders])
        assert b_needs < a_needs

    def test_b_payload_roundtrip(self):
        code = tornado_b(300, seed=24)
        src, enc = encode_random(code, seed=25)
        rng = np.random.default_rng(26)
        order = rng.permutation(code.n)
        needed = code.packets_to_decode(order)
        rec = code.decode({int(i): enc[i] for i in order[:needed]})
        assert np.array_equal(rec, src)
        # B's threshold should be near k (low overhead).
        assert needed < 1.15 * code.k

    def test_inactivation_runs_counted(self):
        code = tornado_b(300, seed=27)
        rng = np.random.default_rng(28)
        dec = code.new_decoder()
        # Feed gradually: completion then lands at B's (inactivation)
        # threshold, which lies below where pure peeling would finish.
        for index in rng.permutation(code.n):
            dec.add_packet(int(index))
            if dec.is_complete:
                break
        assert dec.is_complete
        assert dec.inactivation_runs >= 1


class TestSmallAndDegenerate:
    def test_tiny_k_is_mds(self):
        """k below the cap threshold degenerates to a pure RS code."""
        code = tornado_a(32, seed=29)
        assert not code.structure.graphs
        rng = np.random.default_rng(30)
        src, enc = encode_random(code, seed=31)
        keep = rng.permutation(code.n)[:32]
        rec = code.decode({int(i): enc[i] for i in keep})
        assert np.array_equal(rec, src)

    def test_k_one(self):
        code = TornadoCode(1, seed=0)
        src = np.array([[1, 2, 3]], dtype=np.uint8)
        enc = code.encode(src)
        assert np.array_equal(code.decode({1: enc[1]}), src)

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            TornadoCode(0)
        code = tornado_a(100, seed=1)
        with pytest.raises(ParameterError):
            code.new_decoder().add_packet(code.n)


@given(k=st.integers(min_value=140, max_value=400),
       seed=st.integers(min_value=0, max_value=10))
@settings(max_examples=8, deadline=None)
def test_decode_correctness_property(k, seed):
    """Whenever decode succeeds, the output equals the source block."""
    code = TornadoCode(k, degree_dist=two_point_distribution(3, 20, 0.3),
                       seed=seed)
    rng = np.random.default_rng(seed + 1000)
    src = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    enc = code.encode(src)
    order = rng.permutation(code.n)
    needed = code.packets_to_decode(order)
    rec = code.decode({int(i): enc[i] for i in order[:needed]})
    assert np.array_equal(rec, src)
